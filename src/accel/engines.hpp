// ProTEA computation engines (functional int8 models).
//
// Six engine kinds, mirroring the paper's §IV:
//   QKV_CE — Algorithm 1: per-head Q/K/V projections with column tiling
//            (Fig. 5), biases added in the accumulator domain.
//   QK_CE  — Algorithm 2: Q x K^T attention logits (untiled: the operands
//            are small), scaled and requantized for the softmax LUT.
//   SV_CE  — Algorithm 3: attention-weight x V products.
//   FFN_CE — Algorithm 4: tiled linear transform; instantiated three times
//            (FFN1 = output projection, FFN2 = expansion + activation,
//            FFN3 = contraction) with 2-D tiling (Fig. 6).
//
// Every engine accumulates int8 x int8 products into 32-bit sums (the
// DSP48's 48-bit accumulator has >2^16 headroom over the worst case —
// checked statically in engines.cpp) and requantizes on write-back.
// Cycle accounting lives in perf_model.{hpp,cpp}; these functions compute
// values and MAC counts only, so tests can verify the datapath exactly.
//
// Two calling conventions per engine:
//   * the workspace form — inputs/outputs are preallocated MatrixViews
//     and the int32 accumulators + packed-GEMM scratch come from a
//     runtime::WorkspaceArena. This is the serving runtime's hot path:
//     steady state performs zero heap allocations.
//   * the owning form — the original Matrix in/out signature, now a thin
//     wrapper that sizes the outputs and borrows a thread-local scratch
//     arena. Bit-identical to the workspace form.
//
// The int8 GEMMs run on the packed kernel layer (tensor/qgemm.hpp), which
// is bit-identical to the paper's tile loops because int32 accumulation is
// exact; the ts_mha/ts_ffn tile sizes remain cycle-accounting parameters
// (validated here, consumed by perf_model).
#pragma once

#include <cstdint>

#include "accel/quantized_model.hpp"
#include "numeric/requantize.hpp"
#include "ref/model_config.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::util {
class ThreadPool;
}

namespace protea::accel {

struct EngineStats {
  uint64_t macs = 0;
  /// Paged-KV pool occupancy, mirrored by the generation runtime after
  /// every block reserve/release (pool-wide when the pool is shared;
  /// 0 for dense caches).
  uint64_t kv_blocks_in_use = 0;
  uint64_t kv_blocks_peak = 0;
  /// Bytes memcpy'd out of the paged KV cache by prefix gathers (the
  /// pre-block-strided reference path, 2 x rows x head_dim per head per
  /// layer per step). The block-strided decode path reports 0 — pinned
  /// in tests/test_generation.cpp.
  uint64_t gathered_bytes = 0;
  /// Block-table runs streamed by the span-accepting QK/SV engines (one
  /// per contiguous run per engine call; grows as block_rows shrinks).
  uint64_t span_runs = 0;
  /// Cross-request prefix cache (mirrored by the generation runtime from
  /// runtime::PrefixCache outcomes; all 0 when the cache is off).
  uint64_t prefix_hits = 0;          // prefills that adopted >= 1 cached block
  uint64_t prefix_misses = 0;        // prefills with no usable cached prefix
  uint64_t prefix_rows_adopted = 0;  // prompt rows whose prefill was skipped
  /// Bytes not produced because of the cache: adopted rows x KV row bytes,
  /// plus cross-K/V projection bytes copied instead of recomputed.
  uint64_t prefix_bytes_saved = 0;
  uint64_t cross_kv_hits = 0;    // fill_cross_kv_cache passes skipped
  uint64_t cross_kv_misses = 0;  // memories that had to be projected
};

/// Algorithm 1. `x` is the full (SL x d_model) int8 input; outputs are
/// the per-head (SL x d_k) projections. `ts_mha` is the column tile
/// width; the tile loop reproduces Fig. 5's accumulate-across-tiles.
void run_qkv_engine(tensor::ConstMatrixViewI8 x, const QHeadWeights& head,
                    uint32_t ts_mha, const numeric::RequantParams& rq_q,
                    const numeric::RequantParams& rq_k,
                    const numeric::RequantParams& rq_v,
                    tensor::MatrixViewI8 q, tensor::MatrixViewI8 k,
                    tensor::MatrixViewI8 v, runtime::WorkspaceArena& ws,
                    EngineStats* stats = nullptr,
                    util::ThreadPool* pool = nullptr);
void run_qkv_engine(const tensor::MatrixI8& x, const QHeadWeights& head,
                    uint32_t ts_mha, const numeric::RequantParams& rq_q,
                    const numeric::RequantParams& rq_k,
                    const numeric::RequantParams& rq_v, tensor::MatrixI8& q,
                    tensor::MatrixI8& k, tensor::MatrixI8& v,
                    EngineStats* stats = nullptr);

/// Single-stream variant of Algorithm 1 used by the decoder extension's
/// cross-attention: one projection (out = requant(x * w^T + bias)) with
/// the same column tiling. `wt` is (out_dim x in_dim) transposed layout.
void run_projection_engine(tensor::ConstMatrixViewI8 x,
                           tensor::ConstMatrixViewI8 wt,
                           std::span<const int32_t> bias, uint32_t ts_mha,
                           const numeric::RequantParams& rq,
                           tensor::MatrixViewI8 out,
                           runtime::WorkspaceArena& ws,
                           EngineStats* stats = nullptr,
                           util::ThreadPool* pool = nullptr);
void run_projection_engine(const tensor::MatrixI8& x,
                           const tensor::MatrixI8& wt,
                           std::span<const int32_t> bias, uint32_t ts_mha,
                           const numeric::RequantParams& rq,
                           tensor::MatrixI8& out,
                           EngineStats* stats = nullptr);

/// Algorithm 2. Computes logits = requant(Q x K^T); the attention scale
/// factor (1/sqrt(dk) or 1/d_model) is folded into `rq_logit`.
void run_qk_engine(tensor::ConstMatrixViewI8 q, tensor::ConstMatrixViewI8 k,
                   const numeric::RequantParams& rq_logit,
                   tensor::MatrixViewI8 logits, runtime::WorkspaceArena& ws,
                   EngineStats* stats = nullptr,
                   util::ThreadPool* pool = nullptr);
void run_qk_engine(const tensor::MatrixI8& q, const tensor::MatrixI8& k,
                   const numeric::RequantParams& rq_logit,
                   tensor::MatrixI8& logits, EngineStats* stats = nullptr);

class SoftmaxUnit;

/// Algorithm 2 over a block-strided K operand: `k` is a RowSpanListI8
/// walking a paged KV block table in place (tensor/qgemm span packing),
/// so the decode path pays no gather copy. Bit-identical to gathering
/// first — int32 accumulation is exact and packing order is immaterial.
void run_qk_engine(tensor::ConstMatrixViewI8 q,
                   const tensor::RowSpanListI8& k,
                   const numeric::RequantParams& rq_logit,
                   tensor::MatrixViewI8 logits, runtime::WorkspaceArena& ws,
                   EngineStats* stats = nullptr,
                   util::ThreadPool* pool = nullptr);

/// Algorithm 2 fused with the causal softmax for the cached decode path:
/// computes the QK int32 accumulator over the span-list K operand and
/// hands the tile straight to `softmax`'s fused dequant→softmax→requant
/// pass (SoftmaxUnit::run_causal_fused_into) — the int8 logits matrix is
/// never materialized. `row_offset` is the cached-prefix causal offset;
/// `weights` receives the requantized attention weights (scale 1/127).
void run_qk_softmax_engine(tensor::ConstMatrixViewI8 q,
                           const tensor::RowSpanListI8& k,
                           const numeric::RequantParams& rq_logit,
                           const SoftmaxUnit& softmax, size_t row_offset,
                           tensor::MatrixViewI8 weights,
                           runtime::WorkspaceArena& ws,
                           EngineStats* stats = nullptr,
                           util::ThreadPool* pool = nullptr);

/// Algorithm 3. scores = requant(attn_weights x V).
void run_sv_engine(tensor::ConstMatrixViewI8 attn_weights,
                   tensor::ConstMatrixViewI8 v,
                   const numeric::RequantParams& rq_sv,
                   tensor::MatrixViewI8 scores, runtime::WorkspaceArena& ws,
                   EngineStats* stats = nullptr,
                   util::ThreadPool* pool = nullptr);
void run_sv_engine(const tensor::MatrixI8& attn_weights,
                   const tensor::MatrixI8& v,
                   const numeric::RequantParams& rq_sv,
                   tensor::MatrixI8& scores, EngineStats* stats = nullptr);

/// Algorithm 3 over a block-strided V operand (see the span QK engine).
void run_sv_engine(tensor::ConstMatrixViewI8 attn_weights,
                   const tensor::RowSpanListI8& v,
                   const numeric::RequantParams& rq_sv,
                   tensor::MatrixViewI8 scores, runtime::WorkspaceArena& ws,
                   EngineStats* stats = nullptr,
                   util::ThreadPool* pool = nullptr);

enum class FfnActivation { kNone, kRelu, kGeluLut };

/// Algorithm 4 with Fig. 6 tiling: out = act(requant(in x w + bias)).
/// `w` is (in_dim x out_dim); tiles of `ts_ffn x ts_ffn` are traversed
/// column-tile-major, accumulating partial sums across row tiles.
/// `act_scale` is the int8 scale of the activation's input/output (used
/// to build the GELU lookup table).
void run_ffn_engine(tensor::ConstMatrixViewI8 in, tensor::ConstMatrixViewI8 w,
                    std::span<const int32_t> bias, uint32_t ts_ffn,
                    const numeric::RequantParams& rq, FfnActivation act,
                    double act_scale, tensor::MatrixViewI8 out,
                    runtime::WorkspaceArena& ws,
                    EngineStats* stats = nullptr,
                    util::ThreadPool* pool = nullptr);
void run_ffn_engine(const tensor::MatrixI8& in, const tensor::MatrixI8& w,
                    std::span<const int32_t> bias, uint32_t ts_ffn,
                    const numeric::RequantParams& rq, FfnActivation act,
                    double act_scale, tensor::MatrixI8& out,
                    EngineStats* stats = nullptr);

/// Thread-local scratch arena backing the owning-form wrappers (exposed
/// so module-level wrappers can reuse it instead of allocating).
runtime::WorkspaceArena& engine_scratch_arena();

}  // namespace protea::accel
