// Quantization calibration: derives per-layer activation scales from a
// float reference run.
//
// This mirrors the deployment flow of int8 accelerators (and the paper's
// host-side model preparation): run the float model on representative
// input, record the dynamic range of every intermediate tensor, and fix
// symmetric power-of-two scales for the fixed-point datapath.
#pragma once

#include <vector>

#include "ref/encoder.hpp"

namespace protea::accel {

/// Symmetric per-tensor scales for one encoder layer. x' = q * scale.
struct LayerScales {
  double x = 1.0;        // layer input
  double q = 1.0, k = 1.0, v = 1.0;
  double logit = 1.0;    // scaled attention logits (input to softmax)
  double attn_w = 1.0;   // softmax output (fixed at 1/127)
  double sv = 1.0;       // attention scores (S*V)
  double proj = 1.0;     // after output projection
  double ln1 = 1.0;      // post-attention LayerNorm output
  double hidden = 1.0;   // FFN hidden after activation
  double ffn_out = 1.0;  // FFN contraction output
  double ln2 = 1.0;      // layer output
};

/// Runs the reference encoder on `input`, measures max-|x| of every
/// intermediate and converts to power-of-two scales with `margin`
/// headroom (>1 leaves room for unseen inputs).
std::vector<LayerScales> calibrate_scales(const ref::Encoder& encoder,
                                          const tensor::MatrixF& input,
                                          double margin = 1.25);

}  // namespace protea::accel
