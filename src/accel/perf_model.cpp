#include "accel/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hw/frequency_model.hpp"
#include "hw/hbm.hpp"
#include "hw/resource_model.hpp"
#include "util/math_util.hpp"

namespace protea::accel {
namespace {

using hw::Cycles;
using util::ceil_div;

}  // namespace

const StageTiming& PerfReport::stage(const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("PerfReport: no stage named " + name);
}

PerfReport estimate_performance(const AccelConfig& config,
                                const ref::ModelConfig& model) {
  config.validate();
  validate_runtime(config.synth, model);

  const hw::SynthParams& sp = config.synth;
  const TimingConstants& tc = config.timing;
  const uint64_t sl = model.seq_len;
  const uint64_t d = model.d_model;
  const uint64_t h = model.num_heads;
  const uint64_t dk = d / h;
  const uint64_t f = model.ffn_hidden();
  const uint64_t word = sp.bits / 8;
  const Cycles depth = tc.pipeline_depth;

  const hw::HbmModel hbm;
  const auto load_cycles = [&](uint64_t bytes) {
    return hbm.load_cycles(bytes, sp.hbm_channels_used);
  };
  const auto tile_latency = [&](uint64_t tiles, Cycles load,
                                Cycles compute) {
    return config.overlap_loads
               ? hw::overlapped_tiles(tiles, load, compute)
               : hw::sequential_tiles(tiles, load, compute);
  };

  PerfReport report;

  // --- QKV_CE (Algorithm 1, Fig. 5 column tiling) ---------------------------
  // All head engines run in parallel; the slowest head bounds the stage.
  // Middle loop over the runtime head dimension, inner unroll ts_mha.
  {
    StageTiming s{.name = "qkv"};
    s.invocations = ceil_div(d, static_cast<uint64_t>(sp.ts_mha));
    const uint32_t ii = hw::achieved_ii(4 * sp.ts_mha);
    const Cycles per_tile =
        sl * hw::pipelined_loop(dk, ii, depth) + tc.tile_control;
    s.compute = s.invocations * per_tile;
    // Per tile, each head streams three (dk x ts) weight tiles plus the
    // shared (SL x ts) input tile; heads load concurrently over the
    // striped HBM channels, so total bytes cross the same interface.
    const uint64_t tile_bytes = h * (3 * dk + sl) * sp.ts_mha * word;
    s.bytes_loaded = s.invocations * tile_bytes;
    s.total = tile_latency(s.invocations, load_cycles(tile_bytes), per_tile);
    report.stages.push_back(s);
  }

  // --- QK_CE (Algorithm 2; operands already on-chip) -------------------------
  {
    StageTiming s{.name = "qk"};
    s.invocations = 1;
    // The inner reduction is unrolled for the synthesized head width; a
    // wider runtime head (fewer active heads) needs multiple passes.
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
    s.compute = sl * hw::pipelined_loop(sl, ii, depth);
    s.total = s.compute;
    report.stages.push_back(s);
  }

  // --- Softmax unit -----------------------------------------------------------
  {
    StageTiming s{.name = "softmax"};
    s.invocations = 1;
    s.compute = sl * (2 * sl + tc.softmax_row_overhead);
    s.total = s.compute;
    report.stages.push_back(s);
  }

  // --- SV_CE (Algorithm 3) ----------------------------------------------------
  {
    StageTiming s{.name = "sv"};
    s.invocations = 1;
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(sl, static_cast<uint64_t>(sp.sl_unroll)));
    s.compute = sl * hw::pipelined_loop(dk, ii, depth);
    s.total = s.compute;
    report.stages.push_back(s);
  }

  // --- FFN engines (Algorithm 4, Fig. 6 two-dimensional tiling) --------------
  // Row-tile loop bounds are frozen at synthesis under kSynthFixedRows
  // (the hardware walks zero-padded tiles when d_model shrinks — this is
  // what Table I's d_model scaling shows); column tiles adapt at runtime.
  const bool fixed_rows = config.padding == PaddingPolicy::kSynthFixedRows;
  const uint64_t ts_ffn = sp.ts_ffn;
  const uint64_t rows_d =
      fixed_rows ? sp.tiles_ffn_max() : ceil_div(d, ts_ffn);
  const uint64_t rows_f =
      fixed_rows ? 4ull * sp.tiles_ffn_max() : ceil_div(f, ts_ffn);
  const uint64_t cols_d = ceil_div(d, ts_ffn);
  const uint64_t cols_f = ceil_div(f, ts_ffn);
  const uint32_t ffn_ii = hw::achieved_ii(2 * sp.ts_ffn);
  const Cycles per_access =
      sl * hw::pipelined_loop(ts_ffn, ffn_ii, depth) + tc.tile_control;
  const uint64_t ffn_tile_bytes = ts_ffn * ts_ffn * word;

  const auto ffn_stage = [&](const char* name, uint64_t accesses) {
    StageTiming s{.name = name};
    s.invocations = accesses;
    s.compute = accesses * per_access;
    s.bytes_loaded = accesses * ffn_tile_bytes;
    s.total =
        tile_latency(accesses, load_cycles(ffn_tile_bytes), per_access);
    report.stages.push_back(s);
  };
  ffn_stage("ffn1", rows_d * cols_d);  // projection d -> d
  ffn_stage("ffn2", rows_d * cols_f);  // expansion d -> 4d
  ffn_stage("ffn3", rows_f * cols_d);  // contraction 4d -> d

  // --- LayerNorm units (two per layer, fused residual) -----------------------
  {
    StageTiming s{.name = "layernorm"};
    s.invocations = 2;
    const Cycles per_row =
        3 * ceil_div(d, static_cast<uint64_t>(tc.ln_lanes)) +
        tc.ln_row_overhead;
    s.compute = 2 * sl * per_row;
    s.total = s.compute;
    report.stages.push_back(s);
  }

  // --- Roll-up -----------------------------------------------------------------
  for (const auto& s : report.stages) {
    report.layer_cycles += s.total;
    report.bytes_loaded += s.bytes_loaded;
  }
  report.total_cycles = report.layer_cycles * model.num_layers;
  report.bytes_loaded *= model.num_layers;

  report.fmax_mhz = hw::fmax_mhz(sp);
  report.latency_ms = hw::cycles_to_ms(report.total_cycles, report.fmax_mhz);
  report.macs = model.macs_total();
  report.ops = model.ops_total();
  report.gops =
      static_cast<double>(report.ops) / (report.latency_ms * 1e-3) / 1e9;

  const hw::ResourceReport resources = hw::estimate_resources(sp);
  report.dsp_utilization =
      static_cast<double>(report.macs) /
      (static_cast<double>(resources.total_pes) *
       static_cast<double>(report.total_cycles));
  return report;
}

PerfReport estimate_sparse_performance(const AccelConfig& config,
                                       const ref::ModelConfig& model,
                                       const FfnStageOccupancy& occupancy) {
  for (double occ : {occupancy.ffn1, occupancy.ffn2, occupancy.ffn3}) {
    if (!(occ >= 0.0) || occ > 1.0) {
      throw std::invalid_argument(
          "estimate_sparse_performance: occupancy must be in [0, 1]");
    }
  }
  PerfReport dense = estimate_performance(config, model);

  // Scale each FFN stage to its occupied-tile count; MHA, softmax and LN
  // are unaffected (the paper's comparisons prune only weight matrices).
  hw::Cycles layer = 0;
  for (auto& stage : dense.stages) {
    double occ = 1.0;
    if (stage.name == "ffn1") occ = occupancy.ffn1;
    if (stage.name == "ffn2") occ = occupancy.ffn2;
    if (stage.name == "ffn3") occ = occupancy.ffn3;
    if (occ != 1.0) {
      const auto live = static_cast<uint64_t>(
          std::ceil(occ * static_cast<double>(stage.invocations)));
      const hw::Cycles per_access =
          stage.invocations > 0 ? stage.compute / stage.invocations : 0;
      stage.invocations = live;
      stage.compute = live * per_access;
      stage.total = stage.compute;
      stage.bytes_loaded = static_cast<uint64_t>(
          occ * static_cast<double>(stage.bytes_loaded));
    }
    layer += stage.total;
  }
  dense.layer_cycles = layer;
  dense.total_cycles = layer * model.num_layers;
  dense.bytes_loaded = 0;
  for (const auto& stage : dense.stages) {
    dense.bytes_loaded += stage.bytes_loaded;
  }
  dense.bytes_loaded *= model.num_layers;
  dense.latency_ms = hw::cycles_to_ms(dense.total_cycles, dense.fmax_mhz);
  dense.gops =
      static_cast<double>(dense.ops) / (dense.latency_ms * 1e-3) / 1e9;
  return dense;
}

}  // namespace protea::accel
