#include "accel/layernorm_unit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protea::accel {

void run_layernorm(std::span<const float> gamma, std::span<const float> beta,
                   float eps, tensor::ConstMatrixViewI8 x, double s_x,
                   tensor::ConstMatrixViewI8 r, double s_r, double s_out,
                   tensor::MatrixViewI8 out, std::span<int32_t> scratch) {
  if (gamma.size() != beta.size() || gamma.empty()) {
    throw std::invalid_argument("run_layernorm: bad gamma/beta");
  }
  if (x.rows() != r.rows() || x.cols() != r.cols()) {
    throw std::invalid_argument("run_layernorm: operand shape mismatch");
  }
  if (x.cols() != gamma.size()) {
    throw std::invalid_argument("run_layernorm: width mismatch");
  }
  if (out.rows() != x.rows() || out.cols() != x.cols()) {
    throw std::invalid_argument("run_layernorm: output shape mismatch");
  }
  if (scratch.size() < x.cols()) {
    throw std::invalid_argument("run_layernorm: scratch too small");
  }

  // Align both operands to the finer of the two power-of-two scales with
  // exact integer shifts: z = x << sh_x + r << sh_r at scale s_c.
  const double s_c = std::min(s_x, s_r);
  const auto sh_x = static_cast<int>(std::lround(std::log2(s_x / s_c)));
  const auto sh_r = static_cast<int>(std::lround(std::log2(s_r / s_c)));
  if (std::exp2(sh_x) * s_c != s_x || std::exp2(sh_r) * s_c != s_r) {
    throw std::invalid_argument(
        "run_layernorm: scales must be power-of-two multiples");
  }

  const size_t cols = x.cols();
  int32_t* z = scratch.data();
  for (size_t row = 0; row < x.rows(); ++row) {
    // Pass 1: aligned residual sum and integer mean (rounded).
    int64_t total = 0;
    for (size_t c = 0; c < cols; ++c) {
      z[c] = (int32_t{x(row, c)} << sh_x) + (int32_t{r(row, c)} << sh_r);
      total += z[c];
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(cols);
    // Pass 2: variance in the integer domain.
    double var = 0.0;
    for (size_t c = 0; c < cols; ++c) {
      const double d = static_cast<double>(z[c]) - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    // Scale to real units: z_real = z * s_c.
    const double inv_std =
        1.0 / std::sqrt(var * s_c * s_c + static_cast<double>(eps));
    // Pass 3: normalize, affine, quantize.
    for (size_t c = 0; c < cols; ++c) {
      const double norm =
          (static_cast<double>(z[c]) - mean) * s_c * inv_std;
      const double y = norm * gamma[c] + beta[c];
      const auto q = static_cast<int32_t>(std::llround(y / s_out));
      out(row, c) = static_cast<int8_t>(std::clamp(q, -128, 127));
    }
  }
}

LayerNormUnit::LayerNormUnit(std::span<const float> gamma,
                             std::span<const float> beta, float eps)
    : gamma_(gamma.begin(), gamma.end()),
      beta_(beta.begin(), beta.end()),
      eps_(eps) {
  if (gamma_.size() != beta_.size() || gamma_.empty()) {
    throw std::invalid_argument("LayerNormUnit: bad gamma/beta");
  }
}

tensor::MatrixI8 LayerNormUnit::run(const tensor::MatrixI8& x, double s_x,
                                    const tensor::MatrixI8& r, double s_r,
                                    double s_out) const {
  if (x.rows() != r.rows() || x.cols() != r.cols()) {
    throw std::invalid_argument("LayerNormUnit: operand shape mismatch");
  }
  if (x.cols() != gamma_.size()) {
    throw std::invalid_argument("LayerNormUnit: width mismatch");
  }
  tensor::MatrixI8 out(x.rows(), x.cols());
  std::vector<int32_t> z(x.cols());
  run_layernorm(gamma_, beta_, eps_, x, s_x, r, s_r, s_out, out, z);
  return out;
}

}  // namespace protea::accel
