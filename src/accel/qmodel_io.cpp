#include "accel/qmodel_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace protea::accel {
namespace {

constexpr char kMagic[4] = {'P', 'T', 'Q', '1'};

void write_u32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i32v(std::ostream& os, const std::vector<int32_t>& v) {
  write_u32(os, static_cast<uint32_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(int32_t)));
}
void write_f32v(std::ostream& os, const std::vector<float>& v) {
  write_u32(os, static_cast<uint32_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void write_mat8(std::ostream& os, const tensor::MatrixI8& m) {
  write_u32(os, static_cast<uint32_t>(m.rows()));
  write_u32(os, static_cast<uint32_t>(m.cols()));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size()));
}
void write_rq(std::ostream& os, const numeric::RequantParams& rq) {
  write_u32(os, static_cast<uint32_t>(rq.multiplier));
  write_u32(os, static_cast<uint32_t>(rq.shift));
}

uint32_t read_u32(std::istream& is) {
  uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("qmodel_io: truncated file");
  return v;
}
double read_f64(std::istream& is) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("qmodel_io: truncated file");
  return v;
}
std::vector<int32_t> read_i32v(std::istream& is, size_t expected) {
  const uint32_t n = read_u32(is);
  if (n != expected) throw std::runtime_error("qmodel_io: i32 size");
  std::vector<int32_t> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(int32_t)));
  if (!is) throw std::runtime_error("qmodel_io: truncated i32v");
  return v;
}
std::vector<float> read_f32v(std::istream& is, size_t expected) {
  const uint32_t n = read_u32(is);
  if (n != expected) throw std::runtime_error("qmodel_io: f32 size");
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("qmodel_io: truncated f32v");
  return v;
}
tensor::MatrixI8 read_mat8(std::istream& is, size_t rows, size_t cols) {
  const uint32_t r = read_u32(is);
  const uint32_t c = read_u32(is);
  if (r != rows || c != cols) {
    throw std::runtime_error("qmodel_io: matrix shape mismatch");
  }
  tensor::MatrixI8 m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size()));
  if (!is) throw std::runtime_error("qmodel_io: truncated matrix");
  return m;
}
numeric::RequantParams read_rq(std::istream& is) {
  numeric::RequantParams rq;
  rq.multiplier = static_cast<int32_t>(read_u32(is));
  rq.shift = static_cast<int>(read_u32(is));
  return rq;
}

void write_scales(std::ostream& os, const LayerScales& s) {
  for (double v : {s.x, s.q, s.k, s.v, s.logit, s.attn_w, s.sv, s.proj,
                   s.ln1, s.hidden, s.ffn_out, s.ln2}) {
    write_f64(os, v);
  }
}
LayerScales read_scales(std::istream& is) {
  LayerScales s;
  s.x = read_f64(is);
  s.q = read_f64(is);
  s.k = read_f64(is);
  s.v = read_f64(is);
  s.logit = read_f64(is);
  s.attn_w = read_f64(is);
  s.sv = read_f64(is);
  s.proj = read_f64(is);
  s.ln1 = read_f64(is);
  s.hidden = read_f64(is);
  s.ffn_out = read_f64(is);
  s.ln2 = read_f64(is);
  return s;
}

}  // namespace

void save_quantized_model(const QuantizedModel& model,
                          const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_quantized_model: open " + path);
  os.write(kMagic, sizeof(kMagic));
  const ref::ModelConfig& c = model.config;
  write_u32(os, c.seq_len);
  write_u32(os, c.d_model);
  write_u32(os, c.num_heads);
  write_u32(os, c.num_layers);
  write_u32(os, c.ffn_hidden());
  write_u32(os, c.activation == ref::Activation::kGelu ? 1u : 0u);
  write_u32(os, c.attn_scale == ref::AttnScale::kInvDModel ? 1u : 0u);

  for (const QLayer& l : model.layers) {
    for (const auto& h : l.heads) {
      write_mat8(os, h.wqt);
      write_mat8(os, h.wkt);
      write_mat8(os, h.wvt);
      write_i32v(os, h.bq);
      write_i32v(os, h.bk);
      write_i32v(os, h.bv);
    }
    write_mat8(os, l.wo);
    write_i32v(os, l.bo);
    write_mat8(os, l.w1);
    write_i32v(os, l.b1);
    write_mat8(os, l.w2);
    write_i32v(os, l.b2);
    write_f32v(os, l.ln1_gamma);
    write_f32v(os, l.ln1_beta);
    write_f32v(os, l.ln2_gamma);
    write_f32v(os, l.ln2_beta);
    write_scales(os, l.scales);
    write_f64(os, l.s_wq);
    write_f64(os, l.s_wk);
    write_f64(os, l.s_wv);
    write_f64(os, l.s_wo);
    write_f64(os, l.s_w1);
    write_f64(os, l.s_w2);
    for (const auto* rq :
         {&l.rq_q, &l.rq_k, &l.rq_v, &l.rq_logit, &l.rq_sv, &l.rq_proj,
          &l.rq_hidden, &l.rq_ffn_out}) {
      write_rq(os, *rq);
    }
  }
  if (!os) throw std::runtime_error("save_quantized_model: write failure");
}

QuantizedModel load_quantized_model(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_quantized_model: open " + path);
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_quantized_model: bad magic");
  }
  ref::ModelConfig c;
  c.name = path;
  c.seq_len = read_u32(is);
  c.d_model = read_u32(is);
  c.num_heads = read_u32(is);
  c.num_layers = read_u32(is);
  c.ffn_dim = read_u32(is);
  c.activation = read_u32(is) != 0 ? ref::Activation::kGelu
                                   : ref::Activation::kRelu;
  c.attn_scale = read_u32(is) != 0 ? ref::AttnScale::kInvDModel
                                   : ref::AttnScale::kInvSqrtDk;
  c.validate();

  QuantizedModel model;
  model.config = c;
  model.layers.resize(c.num_layers);
  const size_t d = c.d_model;
  const size_t dk = c.head_dim();
  const size_t f = c.ffn_hidden();
  for (QLayer& l : model.layers) {
    l.heads.resize(c.num_heads);
    for (auto& h : l.heads) {
      h.wqt = read_mat8(is, dk, d);
      h.wkt = read_mat8(is, dk, d);
      h.wvt = read_mat8(is, dk, d);
      h.bq = read_i32v(is, dk);
      h.bk = read_i32v(is, dk);
      h.bv = read_i32v(is, dk);
    }
    l.wo = read_mat8(is, d, d);
    l.bo = read_i32v(is, d);
    l.w1 = read_mat8(is, d, f);
    l.b1 = read_i32v(is, f);
    l.w2 = read_mat8(is, f, d);
    l.b2 = read_i32v(is, d);
    l.ln1_gamma = read_f32v(is, d);
    l.ln1_beta = read_f32v(is, d);
    l.ln2_gamma = read_f32v(is, d);
    l.ln2_beta = read_f32v(is, d);
    l.scales = read_scales(is);
    l.s_wq = read_f64(is);
    l.s_wk = read_f64(is);
    l.s_wv = read_f64(is);
    l.s_wo = read_f64(is);
    l.s_w1 = read_f64(is);
    l.s_w2 = read_f64(is);
    for (auto* rq : {&l.rq_q, &l.rq_k, &l.rq_v, &l.rq_logit, &l.rq_sv,
                     &l.rq_proj, &l.rq_hidden, &l.rq_ffn_out}) {
      *rq = read_rq(is);
    }
  }
  return model;
}

}  // namespace protea::accel
