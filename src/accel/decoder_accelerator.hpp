// Decoder accelerator: the paper's §VI extension, "support both encoder
// and decoder layers ... using the same design principles".
//
// The decoder REUSES the encoder's computation engines: the masked
// self-attention runs on the QKV/QK/SV engines (with the softmax unit's
// causal mode), cross-attention sequences the same engines as single
// projection passes over the decoder stream and the encoder memory, and
// the projections/FFN run on the FFN engines. Only the control sequence
// differs — which is exactly how a runtime-programmable design would add
// decoding without re-synthesis.
#pragma once

#include <memory>
#include <optional>

#include "accel/accel_config.hpp"
#include "accel/decoder_model.hpp"
#include "accel/engines.hpp"
#include "accel/perf_model.hpp"
#include "numeric/fp8.hpp"
#include "runtime/generation.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

class ProteaDecoderAccelerator {
 public:
  explicit ProteaDecoderAccelerator(AccelConfig config);

  const AccelConfig& config() const { return config_; }

  void load_model(QuantizedDecoder model);
  bool has_model() const { return model_.has_value(); }
  const QuantizedDecoder& model() const;

  /// Runs the int8 decoder datapath: float target (T x d) and encoder
  /// memory (S x d) in, dequantized float output (T x d) out. T may be
  /// any prefix length up to the synthesized maximum (full-recompute
  /// mode — every call reruns the whole prefix).
  tensor::MatrixF forward(const tensor::MatrixF& target,
                          const tensor::MatrixF& memory);

  // --- KV-cached incremental decoding (runtime/generation.hpp) --------------
  // prefill() begins a sequence: the encoder memory is projected into the
  // per-layer cross K/V caches once and the prefix runs through the stack
  // with self K/V appended. decode_step() then costs O(position) attention
  // work instead of a full-prefix recompute, and is bit-identical to the
  // corresponding row of forward() — greedy decode emits the exact same
  // tokens, just without the quadratic bill.

  /// Returns the (prefix rows x d) output states (same rows forward()
  /// would produce).
  tensor::MatrixF prefill(const tensor::MatrixF& prefix,
                          const tensor::MatrixF& memory);

  /// One incremental step; returns the (1 x d) output state for the
  /// appended token.
  tensor::MatrixF decode_step(const tensor::MatrixF& token);

  /// Target rows cached so far (0 before the first prefill()).
  size_t generation_position() const;

  /// Cycle-model estimate for a (target_len, memory_len) program.
  PerfReport performance(uint32_t target_len, uint32_t memory_len) const;

  /// Cycle-model estimate for one KV-cached decode step at the given
  /// 0-based target position.
  PerfReport step_performance(uint32_t pos, uint32_t memory_len) const;

  const EngineStats& stats() const { return stats_; }

 private:
  AccelConfig config_;
  std::optional<QuantizedDecoder> model_;
  EngineStats stats_;
  runtime::WorkspaceArena ws_;  // session workspace for forward()
  // Lazily-built KV-cached generation context (reset by load_model; MAC
  // accounting funnels into stats_ alongside forward()'s).
  std::unique_ptr<runtime::GenerationSession> gen_;
};

/// Analytic decoder-layer cycle model (shares all encoder constants).
PerfReport estimate_decoder_performance(const AccelConfig& config,
                                        const ref::ModelConfig& model,
                                        uint32_t target_len,
                                        uint32_t memory_len);

/// Cycle model of ONE KV-cached incremental decode step computing target
/// position `pos` (0-based): a single query row whose self-attention
/// spans the pos+1 cached rows, cross-attention over memory projections
/// already cached at prefill (no cross_kv stage — the defining saving),
/// and single-row projections/FFN. Matches the executed schedule of
/// GenerationSession::decode_step exactly (MAC counts are cross-checked
/// against EngineStats in tests/test_generation.cpp).
///
/// The default models the block-strided paged path: the QK/SV engines
/// stream K/V straight out of the block table, so the step moves zero
/// gather traffic (report.bytes_loaded == 0, matching the executed
/// EngineStats::gathered_bytes == 0). `kv_gather_fallback = true` models
/// the legacy gather path instead: a "self_gather" stage whose
/// bytes_loaded is the per-layer prefix copy (num_heads x 2 x kv_len x
/// head_dim), rolled into report.bytes_loaded across layers —
/// cross-checked against the executed fallback counter in
/// tests/test_generation.cpp.
///
/// `kv_storage` models the self-K/V cache format (numeric/fp8.hpp).
/// int8 leaves every figure untouched (byte-identical reports). A
/// quantized format adds pure data movement, never cycles — decode is a
/// 256-entry LUT fused into the GEMM pack stage:
///   * strided (default): a bytes-only "kv_dequant" stage counts the
///     stored-code bytes the pack stage streams per step (num_heads x
///     stored bytes of the 2 x kv_len x head_dim prefix);
///   * gather fallback: the "self_gather" stage's bytes_loaded shrinks
///     to the stored width — matching the executed
///     EngineStats::gathered_bytes of a quantized fallback session.
PerfReport estimate_decode_step_performance(
    const AccelConfig& config, const ref::ModelConfig& model, uint32_t pos,
    uint32_t memory_len, bool kv_gather_fallback = false,
    numeric::KvStorage kv_storage = numeric::KvStorage::kInt8);

/// Self-K/V memory model for a sequence of `rows` cached target rows:
/// the dense layout reserves the full programmed capacity
/// (model.seq_len) per slot regardless of the sequence, while the paged
/// layout holds ceil(rows / block_rows) blocks. The ratio
/// dense_bytes / paged_bytes is the concurrency multiplier a shared
/// block pool buys at equal arena footprint — what
/// bench_decoder_scaling's paged-vs-dense records measure executed.
struct KvFootprint {
  /// K+V bytes per token row across the stack, at the POOL's stored
  /// width: layers x heads x 2 x kv_storage_bytes(head_dim, storage).
  /// Matches KvCache/KvBlockPool row accounting exactly per format
  /// (int8 and fp8 are 1 byte/element; fp4-e2m1 packs 2 per byte).
  uint64_t row_bytes = 0;
  /// Per-slot dense reservation (capacity rows). The dense layout's
  /// arena is ALWAYS 1 byte/element — quantized formats round-trip
  /// values in place there instead of packing — so this term never
  /// shrinks with storage; only the paged pool does.
  uint64_t dense_bytes = 0;
  uint64_t paged_bytes = 0;  // blocks needed for `rows` rows
  uint32_t blocks = 0;       // ceil(rows / block_rows)
  /// Bytes the legacy gather fallback copies out of the block table per
  /// decode step at this prefix length (row_bytes x rows — every head of
  /// every layer re-gathers its 2 x rows x head_dim prefix). The
  /// block-strided default moves zero; matches the executed per-step
  /// EngineStats::gathered_bytes delta of a fallback session.
  uint64_t gather_bytes_per_step = 0;
  /// Peak per-head workspace the gather fallback holds for its contiguous
  /// K/V staging views (2 x rows x head_dim) — scratch the block-strided
  /// path eliminates entirely (spans read the pool in place).
  uint64_t gather_scratch_bytes = 0;
};

KvFootprint estimate_kv_footprint(
    const ref::ModelConfig& model, uint32_t rows, uint32_t block_rows,
    numeric::KvStorage storage = numeric::KvStorage::kInt8);

/// Shared-vs-private self-K/V memory model for copy-on-write forking
/// (runtime/decode_policy.hpp): `beams` branches fork off a
/// `prompt_rows`-row prefill and then each diverge by `new_rows` cached
/// rows. COW shares the prompt lineage once (each beam privately holds
/// only its divergent tail plus the write-triggered copy of the
/// straddling block); the eager reference copies the full lineage per
/// beam. `bytes_saved` is the COW win — what bench_decoder_scaling's
/// beam-K records measure executed via pool accounting.
struct ForkedKvFootprint {
  uint64_t row_bytes = 0;          // K+V bytes per token row (whole stack)
  uint32_t shared_blocks = 0;      // prompt lineage, counted once
  uint32_t private_blocks = 0;     // worst-case divergent blocks per beam
  uint64_t cow_bytes = 0;          // shared + beams x private
  uint64_t eager_bytes = 0;        // beams x full per-beam lineage
  uint64_t bytes_saved = 0;        // eager_bytes - cow_bytes
};

ForkedKvFootprint estimate_forked_kv_footprint(
    const ref::ModelConfig& model, uint32_t prompt_rows, uint32_t new_rows,
    uint32_t beams, uint32_t block_rows,
    numeric::KvStorage storage = numeric::KvStorage::kInt8);

/// Cycle model of width-K beam search over the KV-cached engine,
/// mirroring BeamSearchDecoder's executed schedule: ONE prefill of
/// `prefill_len` rows (beams fork the cache instead of re-prefilling —
/// forks cost no engine work), then K incremental steps per emitted
/// token at positions [prefill_len, total_len - 1) — the final selected
/// token is scored from the last step's states and never decoded. The
/// vocab-head projection runs off-accelerator and is not modeled. MACs
/// are cross-checked against the executed decoder's EngineStats in
/// tests/test_decode_policy.cpp.
PerfReport estimate_beam_generation_performance(const AccelConfig& config,
                                                const ref::ModelConfig& model,
                                                uint32_t prefill_len,
                                                uint32_t total_len,
                                                uint32_t memory_len,
                                                uint32_t beam_width);

/// Prefill-phase knobs shared by the chunk-/cache-aware estimators,
/// mirroring what the generation runtime actually executes.
struct GenerationCosting {
  /// Prompt rows per prefill pass (0 = one pass). Chunking changes the
  /// MAC count — each pass's QK/SV spans rows_cached_so_far + pass rows,
  /// not the final prompt length — so the model replays the schedule.
  uint32_t prefill_chunk = 0;
  /// Prompt rows covered by prefix-cache adoption: the passes start at
  /// this position instead of 0 (must be < prefill_len).
  uint32_t adopted_rows = 0;
  /// Cross-K/V projections reused from the cache: the one-time
  /// 2 x memory_len x d x d per-layer cross_kv stage disappears.
  bool cross_cached = false;
  /// Self-K/V storage format the runtime is configured with
  /// (GenerationOptions::kv_storage). Scales the byte-side terms —
  /// adopted-prefix kv_bytes in estimate_prefix_cache_savings, the
  /// kv_dequant/self_gather traffic of the decode phase — and nothing
  /// else: quantized storage never changes cycle or MAC figures.
  numeric::KvStorage kv_storage = numeric::KvStorage::kInt8;
};

/// Cycle/MAC model of ONE chunked, cache-assisted prefill — the exact
/// schedule GenerationSession executes: the cross-K/V projection unless
/// cross_cached, then stack passes over prompt rows [adopted_rows,
/// prefill_len) in prefill_chunk-row chunks (0 = one pass), each pass's
/// self-attention spanning every row cached so far. With all-default
/// costing this reduces exactly to estimate_decoder_performance. MACs
/// are exact against the executed EngineStats delta (cross-checked in
/// tests/test_prefix_cache.cpp).
PerfReport estimate_prefill_performance(const AccelConfig& config,
                                        const ref::ModelConfig& model,
                                        uint32_t prefill_len,
                                        uint32_t memory_len,
                                        const GenerationCosting& costing = {});

/// Total cycle model for a KV-cached generation: one full prefill of
/// `prefill_len` rows (which includes the one-time cross K/V projection)
/// plus incremental steps for positions [prefill_len, total_len). The
/// report aggregates the two phases as stages "prefill" and
/// "decode_steps"; compare against summing estimate_decoder_performance
/// over growing prefixes to quantify the O(T^2) -> O(T) win.
PerfReport estimate_generation_performance(const AccelConfig& config,
                                           const ref::ModelConfig& model,
                                           uint32_t prefill_len,
                                           uint32_t total_len,
                                           uint32_t memory_len);

/// Costing-aware overload: the prefill phase follows `costing` (chunked
/// passes, adopted prefix, cached cross projections) while the decode
/// phase is unchanged — decode after adoption runs the identical
/// schedule, that is the whole point. All-default costing matches the
/// 5-argument overload exactly.
PerfReport estimate_generation_performance(const AccelConfig& config,
                                           const ref::ModelConfig& model,
                                           uint32_t prefill_len,
                                           uint32_t total_len,
                                           uint32_t memory_len,
                                           const GenerationCosting& costing);

/// Modeled per-request savings of the prefix cache: a cold prefill
/// (adopted_rows = 0, cross_cached = false, same chunking) minus the
/// warm one. macs_saved is exact against the executed cold-vs-warm
/// EngineStats delta; kv_bytes/cross_bytes match the runtime's
/// prefix_bytes_saved accounting term for term.
struct PrefixCacheSavings {
  uint64_t macs_saved = 0;
  uint64_t rows_skipped = 0;  // adopted prompt rows
  uint64_t kv_bytes = 0;      // self-K/V bytes of the adopted rows
  uint64_t cross_bytes = 0;   // cross-K/V projection bytes skipped
  double ms_saved = 0.0;      // modeled prefill latency delta
};

PrefixCacheSavings estimate_prefix_cache_savings(
    const AccelConfig& config, const ref::ModelConfig& model,
    uint32_t prefill_len, uint32_t memory_len,
    const GenerationCosting& costing);

/// Analytic cost of the traffic engine's two preemption-recovery
/// strategies (runtime/traffic.hpp) for a victim holding `rows_cached`
/// target rows, used for victim/strategy selection:
///
///   * swap-out moves the held block bytes twice (spill + rescatter)
///     over HBM at the synthesized channel allocation — pure bandwidth,
///     zero engine MACs;
///   * drop-and-recompute re-runs the cached rows through the stack
///     (one prefill-shaped pass; replay chunking does not change the
///     MAC count) — pure compute, zero extra traffic.
///
/// recompute_macs is exact (cross-checked against the executed replay's
/// EngineStats delta in tests); the millisecond figures are the same
/// cycle model the other estimators use.
struct PreemptionCost {
  uint64_t swap_bytes = 0;     // held block bytes x 2 (spill + restore)
  double swap_ms = 0.0;        // HBM transfer time for both moves
  uint64_t recompute_macs = 0; // exact MACs of the restore re-prefill
  double recompute_ms = 0.0;   // modeled latency of that re-prefill
  bool prefer_swap = false;    // swap_ms < recompute_ms
};

PreemptionCost estimate_preemption_cost(
    const AccelConfig& config, const ref::ModelConfig& model,
    uint32_t rows_cached, uint32_t memory_len, uint32_t block_rows,
    numeric::KvStorage storage = numeric::KvStorage::kInt8);

}  // namespace protea::accel
