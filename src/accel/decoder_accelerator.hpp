// Decoder accelerator: the paper's §VI extension, "support both encoder
// and decoder layers ... using the same design principles".
//
// The decoder REUSES the encoder's computation engines: the masked
// self-attention runs on the QKV/QK/SV engines (with the softmax unit's
// causal mode), cross-attention sequences the same engines as single
// projection passes over the decoder stream and the encoder memory, and
// the projections/FFN run on the FFN engines. Only the control sequence
// differs — which is exactly how a runtime-programmable design would add
// decoding without re-synthesis.
#pragma once

#include <optional>

#include "accel/accel_config.hpp"
#include "accel/decoder_model.hpp"
#include "accel/engines.hpp"
#include "accel/perf_model.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

class ProteaDecoderAccelerator {
 public:
  explicit ProteaDecoderAccelerator(AccelConfig config);

  const AccelConfig& config() const { return config_; }

  void load_model(QuantizedDecoder model);
  bool has_model() const { return model_.has_value(); }
  const QuantizedDecoder& model() const;

  /// Runs the int8 decoder datapath: float target (T x d) and encoder
  /// memory (S x d) in, dequantized float output (T x d) out. T may be
  /// any prefix length up to the synthesized maximum (autoregressive
  /// decoding reprograms the target length each step).
  tensor::MatrixF forward(const tensor::MatrixF& target,
                          const tensor::MatrixF& memory);

  /// Cycle-model estimate for a (target_len, memory_len) program.
  PerfReport performance(uint32_t target_len, uint32_t memory_len) const;

  const EngineStats& stats() const { return stats_; }

 private:
  AccelConfig config_;
  std::optional<QuantizedDecoder> model_;
  EngineStats stats_;
  runtime::WorkspaceArena ws_;  // session workspace for forward()
};

/// Analytic decoder-layer cycle model (shares all encoder constants).
PerfReport estimate_decoder_performance(const AccelConfig& config,
                                        const ref::ModelConfig& model,
                                        uint32_t target_len,
                                        uint32_t memory_len);

}  // namespace protea::accel
