#include "accel/quant_calib.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protea::accel {
namespace {

double max_abs(const tensor::MatrixF& m) {
  double v = 0.0;
  for (float x : m.flat()) v = std::max(v, std::abs(static_cast<double>(x)));
  return v;
}

double max_abs(const std::vector<tensor::MatrixF>& ms) {
  double v = 0.0;
  for (const auto& m : ms) v = std::max(v, max_abs(m));
  return v;
}

/// Power-of-two scale covering [-range, range] with an int8 grid.
double pow2_scale(double range, double margin) {
  const double needed = std::max(range * margin, 1e-6) / 127.0;
  return std::exp2(std::ceil(std::log2(needed)));
}

}  // namespace

std::vector<LayerScales> calibrate_scales(const ref::Encoder& encoder,
                                          const tensor::MatrixF& input,
                                          double margin) {
  if (!(margin >= 1.0)) {
    throw std::invalid_argument("calibrate_scales: margin must be >= 1");
  }
  std::vector<ref::LayerTrace> traces;
  encoder.forward_traced(input, traces);

  const auto& cfg = encoder.config();
  const double scale_factor =
      cfg.attn_scale == ref::AttnScale::kInvSqrtDk
          ? 1.0 / std::sqrt(static_cast<double>(cfg.head_dim()))
          : 1.0 / static_cast<double>(cfg.d_model);

  std::vector<LayerScales> scales(traces.size());
  tensor::MatrixF layer_input = input;
  for (size_t l = 0; l < traces.size(); ++l) {
    const auto& t = traces[l];
    LayerScales& s = scales[l];
    s.x = pow2_scale(max_abs(layer_input), margin);
    s.q = pow2_scale(max_abs(t.q), margin);
    s.k = pow2_scale(max_abs(t.k), margin);
    s.v = pow2_scale(max_abs(t.v), margin);
    // Logits are Q.K^T * scale_factor; the trace stores post-softmax
    // weights, so derive the logit range from Q/K magnitudes instead:
    // |logit| <= dk * max|q| * max|k| * scale_factor is far too loose —
    // use the empirical bound sqrt(dk)*maxq*maxk*scale_factor which holds
    // for near-orthogonal rows, with the calibration margin on top.
    const double logit_range =
        std::sqrt(static_cast<double>(cfg.head_dim())) * max_abs(t.q) *
        max_abs(t.k) * scale_factor;
    s.logit = pow2_scale(logit_range, margin);
    s.attn_w = 1.0 / 127.0;  // softmax outputs live in [0, 1]
    s.sv = pow2_scale(max_abs(t.attn_scores), margin);
    s.proj = pow2_scale(max_abs(t.proj), margin);
    s.ln1 = pow2_scale(max_abs(t.ln1_out), margin);
    s.hidden = pow2_scale(max_abs(t.ffn_hidden), margin);
    s.ffn_out = pow2_scale(max_abs(t.ffn_out), margin);
    s.ln2 = pow2_scale(max_abs(t.ln2_out), margin);
    layer_input = t.ln2_out;
  }
  return scales;
}

}  // namespace protea::accel
