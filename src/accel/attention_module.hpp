// Multi-head attention module (paper Fig. 3): h parallel head pipelines,
// each chaining QKV_CE -> QK_CE -> softmax -> SV_CE, concatenated into the
// (SL x d_model) attention output at the shared `sv` scale.
//
// The execution now lives in the runtime layer (runtime/layer_ops.hpp,
// run_encoder_mha_stage); this wrapper keeps the original owning-Matrix
// API on top of it.
#pragma once

#include "accel/engines.hpp"
#include "accel/quantized_model.hpp"
#include "runtime/layer_ops.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

class AttentionModule {
 public:
  /// Per-head intermediates captured when a trace sink is provided.
  using HeadTrace = runtime::HeadTrace;

  /// Runs all heads of `layer` on int8 input `x` (scale layer.scales.x)
  /// and returns the concatenated attention output (scale layer.scales.sv).
  /// `ts_mha` is the synthesized MHA tile width.
  static tensor::MatrixI8 run(const QLayer& layer, const tensor::MatrixI8& x,
                              uint32_t ts_mha, EngineStats* stats = nullptr,
                              std::vector<HeadTrace>* traces = nullptr);
};

}  // namespace protea::accel
