// Top-level ProTEA accelerator simulator.
//
// Mirrors the deployed system: a synthesized configuration (tile sizes,
// engine counts — fixed at construction), a loaded quantized model, and a
// runtime program (SL, d_model, h, N) that can be changed between runs
// without "re-synthesis". forward() runs the bit-level datapath; the
// latency/throughput of the same run come from the analytic perf model
// (estimate_performance), which the cycle-accounting tests pin to the
// engine loop structure.
#pragma once

#include <optional>

#include "accel/accel_config.hpp"
#include "accel/attention_module.hpp"
#include "accel/ffn_module.hpp"
#include "accel/perf_model.hpp"
#include "accel/quantized_model.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

/// Full per-layer trace of the quantized datapath (testing hook).
using AccelLayerTrace = runtime::EncoderLayerTrace;

class ProteaAccelerator {
 public:
  explicit ProteaAccelerator(AccelConfig config);

  const AccelConfig& config() const { return config_; }

  /// Loads model weights (the paper's AXI "load instruction" path) and
  /// programs the runtime hyperparameters from the model's config.
  /// Throws when the model exceeds the synthesized maxima.
  void load_model(QuantizedModel model);

  bool has_model() const { return model_.has_value(); }
  const QuantizedModel& model() const;

  /// Reprograms runtime hyperparameters without reloading weights —
  /// only a *reduction* of the loaded model is allowed (fewer layers /
  /// shorter sequences), mirroring the µB software's bound checks.
  void program_layers(uint32_t num_layers);
  void program_seq_len(uint32_t seq_len);

  const ref::ModelConfig& programmed_config() const;

  /// Runs the quantized datapath: float input -> quantize -> engines ->
  /// dequantized float output. Optionally captures per-layer traces.
  tensor::MatrixF forward(const tensor::MatrixF& input,
                          std::vector<AccelLayerTrace>* traces = nullptr);

  /// Analytic latency/throughput for the current program.
  PerfReport performance() const;

  /// MACs issued by the engines since load_model (functional counter,
  /// used to cross-check the perf model's operation accounting).
  const EngineStats& stats() const { return stats_; }

 private:
  AccelConfig config_;
  std::optional<QuantizedModel> model_;
  ref::ModelConfig program_;
  EngineStats stats_;
  runtime::WorkspaceArena ws_;  // session workspace for forward()
};

}  // namespace protea::accel
