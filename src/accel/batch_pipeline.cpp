#include "accel/batch_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace protea::accel {

ModuleSplit split_module_cycles(const PerfReport& per_seq) {
  // Split each layer's stages between the two physical modules.
  ModuleSplit split;
  for (const auto& stage : per_seq.stages) {
    if (stage.name == "qkv" || stage.name == "qk" ||
        stage.name == "softmax" || stage.name == "sv") {
      split.mha_layer += stage.total;
    } else {
      split.ffn_layer += stage.total;  // ffn1..3 + layernorm units
    }
  }
  return split;
}

BatchReport estimate_batch_performance(const AccelConfig& config,
                                       const ref::ModelConfig& model,
                                       uint32_t batch) {
  if (batch == 0) {
    throw std::invalid_argument("estimate_batch_performance: zero batch");
  }
  const PerfReport per_seq = estimate_performance(config, model);
  const auto [mha_layer, ffn_layer] = split_module_cycles(per_seq);

  BatchReport report;
  report.batch = batch;
  report.fmax_mhz = per_seq.fmax_mhz;
  report.mha_stage_cycles = mha_layer * model.num_layers;
  report.ffn_stage_cycles = ffn_layer * model.num_layers;
  report.serial_cycles = per_seq.total_cycles * batch;

  // Layer-granular two-stage pipeline with the intra-sequence dependency
  // respected: within ONE sequence, layer l+1's MHA needs layer l's FFN,
  // so a batch of one cannot overlap at all. With B >= 2 the controller
  // interleaves sequences round-robin, the faster module hides under the
  // slower one, and the makespan is fill(min stage) + all passes through
  // the bottleneck stage.
  if (batch == 1) {
    report.pipelined_cycles = report.serial_cycles;
  } else {
    const hw::Cycles slot = std::max(mha_layer, ffn_layer);
    const hw::Cycles fill = std::min(mha_layer, ffn_layer);
    const uint64_t slots =
        static_cast<uint64_t>(batch) * model.num_layers;
    report.pipelined_cycles =
        std::min(fill + slots * slot, report.serial_cycles);
  }

  report.latency_ms =
      hw::cycles_to_ms(report.pipelined_cycles, report.fmax_mhz);
  report.throughput_seq_per_s =
      static_cast<double>(batch) / (report.latency_ms * 1e-3);
  report.speedup_vs_serial =
      static_cast<double>(report.serial_cycles) /
      static_cast<double>(report.pipelined_cycles);
  return report;
}

}  // namespace protea::accel
