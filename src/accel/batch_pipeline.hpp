// Batch pipelining across the MHA and FFN modules.
//
// ProTEA's two processing modules (Fig. 3/4) are physically distinct
// engine groups, so while the FFN module works on sequence i, the MHA
// module can already process sequence i+1 — a two-stage coarse pipeline
// over a batch. Within one sequence the modules are dependent (no
// intra-sequence overlap); across sequences the bottleneck module sets
// the steady-state rate. This is the throughput-oriented operating mode
// a serving deployment of ProTEA would use; latency-oriented numbers
// (Tables I-III) are the batch=1 case.
#pragma once

#include "accel/perf_model.hpp"

namespace protea::accel {

struct BatchReport {
  uint32_t batch = 1;
  hw::Cycles mha_stage_cycles = 0;   // per sequence, all layers
  hw::Cycles ffn_stage_cycles = 0;   // per sequence, all layers
  hw::Cycles serial_cycles = 0;      // batch run back-to-back
  hw::Cycles pipelined_cycles = 0;   // two-stage pipelined batch
  double latency_ms = 0.0;           // pipelined batch latency
  double throughput_seq_per_s = 0.0;
  double speedup_vs_serial = 1.0;
  double fmax_mhz = 0.0;
};

/// Per-layer cycle split between the two physical modules (the MHA
/// engine group vs the FFN engine group + LN units). Shared by the
/// analytic pipeline model below and the runtime batch scheduler's
/// virtual-time replay, so the two are cross-checkable cycle-exactly.
struct ModuleSplit {
  hw::Cycles mha_layer = 0;
  hw::Cycles ffn_layer = 0;
};

ModuleSplit split_module_cycles(const PerfReport& per_seq);

/// Two-stage pipeline model over `batch` independent sequences.
/// NOTE: with N layers, a sequence alternates MHA/FFN N times; the
/// pipeline interleaves at layer granularity, so steady state is
/// max(mha_layer, ffn_layer) per layer slot with a one-stage fill.
BatchReport estimate_batch_performance(const AccelConfig& config,
                                       const ref::ModelConfig& model,
                                       uint32_t batch);

}  // namespace protea::accel
