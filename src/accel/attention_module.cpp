#include "accel/attention_module.hpp"

#include <stdexcept>

#include "tensor/qgemm.hpp"

namespace protea::accel {

tensor::MatrixI8 AttentionModule::run(const QLayer& layer,
                                      const tensor::MatrixI8& x,
                                      uint32_t ts_mha, EngineStats* stats,
                                      std::vector<HeadTrace>* traces) {
  if (layer.heads.empty()) {
    throw std::invalid_argument("AttentionModule: no heads");
  }
  if (layer.heads[0].wqt.rows() * layer.heads.size() != x.cols()) {
    throw std::invalid_argument("AttentionModule: head dims inconsistent");
  }
  tensor::MatrixI8 concat(x.rows(), x.cols());
  runtime::WorkspaceArena& ws = engine_scratch_arena();
  const runtime::LayerOpContext ctx{.ws = ws,
                                    .ts_mha = ts_mha,
                                    .ts_ffn = 0,
                                    .stats = stats,
                                    .gemm_pool =
                                        tensor::qgemm_default_pool()};
  runtime::run_encoder_mha_stage(ctx, layer, x, concat, traces);
  return concat;
}

}  // namespace protea::accel
