#include "accel/attention_module.hpp"

#include <stdexcept>

#include "accel/softmax_unit.hpp"

namespace protea::accel {

tensor::MatrixI8 AttentionModule::run(const QLayer& layer,
                                      const tensor::MatrixI8& x,
                                      uint32_t ts_mha, EngineStats* stats,
                                      std::vector<HeadTrace>* traces) {
  const size_t sl = x.rows();
  const size_t d = x.cols();
  const size_t h = layer.heads.size();
  if (h == 0) throw std::invalid_argument("AttentionModule: no heads");
  const size_t dk = layer.heads[0].wqt.rows();
  if (dk * h != d) {
    throw std::invalid_argument("AttentionModule: head dims inconsistent");
  }

  const SoftmaxUnit softmax(layer.scales.logit);
  tensor::MatrixI8 concat(sl, d);
  if (traces != nullptr) traces->resize(h);

  for (size_t head = 0; head < h; ++head) {
    tensor::MatrixI8 q, k, v, logits, scores;
    run_qkv_engine(x, layer.heads[head], ts_mha, layer.rq_q, layer.rq_k,
                   layer.rq_v, q, k, v, stats);
    run_qk_engine(q, k, layer.rq_logit, logits, stats);
    tensor::MatrixI8 weights = softmax.run(logits);
    run_sv_engine(weights, v, layer.rq_sv, scores, stats);

    for (size_t i = 0; i < sl; ++i) {
      for (size_t c = 0; c < dk; ++c) {
        concat(i, head * dk + c) = scores(i, c);
      }
    }
    if (traces != nullptr) {
      auto& t = (*traces)[head];
      t.q = std::move(q);
      t.k = std::move(k);
      t.v = std::move(v);
      t.logits = std::move(logits);
      t.attn_weights = std::move(weights);
      t.scores = std::move(scores);
    }
  }
  return concat;
}

}  // namespace protea::accel
