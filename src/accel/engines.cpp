#include "accel/engines.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "accel/softmax_unit.hpp"
#include "numeric/dsp48.hpp"
#include "tensor/qgemm.hpp"

namespace protea::accel {
namespace {

// Worst-case reduction: max_d_model (4096 generous bound) int8*int8
// products plus an int32 bias — comfortably inside the DSP48 accumulator.
static_assert(numeric::accumulation_fits_dsp48(4096, 128 * 128),
              "reduction depth exceeds DSP48 accumulator headroom");

constexpr int32_t kQMax = 127;
constexpr int32_t kQMin = -128;

int8_t requant8(int64_t acc, const numeric::RequantParams& rq) {
  return static_cast<int8_t>(numeric::requantize(acc, rq, kQMin, kQMax));
}

/// int8 -> int8 GELU lookup table at a fixed scale (tanh formulation),
/// the LUT the FPGA stores in LUTRAM.
std::array<int8_t, 256> build_gelu_table(double scale) {
  std::array<int8_t, 256> table{};
  for (int qi = kQMin; qi <= kQMax; ++qi) {
    const double x = qi * scale;
    const double inner =
        0.7978845608028654 * (x + 0.044715 * x * x * x);
    const double y = 0.5 * x * (1.0 + std::tanh(inner));
    const auto q = static_cast<int32_t>(std::llround(y / scale));
    table[static_cast<size_t>(qi - kQMin)] =
        static_cast<int8_t>(std::clamp(q, kQMin, kQMax));
  }
  return table;
}

void check_out_shape(tensor::MatrixViewI8 out, size_t rows, size_t cols,
                     const char* name) {
  if (out.rows() != rows || out.cols() != cols) {
    throw std::invalid_argument(std::string(name) +
                                ": output view shape mismatch");
  }
}

}  // namespace

runtime::WorkspaceArena& engine_scratch_arena() {
  static thread_local runtime::WorkspaceArena arena;
  return arena;
}

// --- QKV engine --------------------------------------------------------------

void run_qkv_engine(tensor::ConstMatrixViewI8 x, const QHeadWeights& head,
                    uint32_t ts_mha, const numeric::RequantParams& rq_q,
                    const numeric::RequantParams& rq_k,
                    const numeric::RequantParams& rq_v,
                    tensor::MatrixViewI8 q, tensor::MatrixViewI8 k,
                    tensor::MatrixViewI8 v, runtime::WorkspaceArena& ws,
                    EngineStats* stats, util::ThreadPool* pool) {
  const size_t sl = x.rows();
  const size_t d = x.cols();
  const size_t dk = head.wqt.rows();
  if (head.wqt.cols() != d || head.wkt.cols() != d || head.wvt.cols() != d) {
    throw std::invalid_argument("run_qkv_engine: weight width mismatch");
  }
  if (ts_mha == 0) {
    throw std::invalid_argument("run_qkv_engine: zero tile size");
  }
  check_out_shape(q, sl, dk, "run_qkv_engine");
  check_out_shape(k, sl, dk, "run_qkv_engine");
  check_out_shape(v, sl, dk, "run_qkv_engine");

  // Fig. 5's accumulate-across-column-tiles is exact int32 arithmetic, so
  // the packed kernel reproduces it bit-for-bit at any blocking; the tile
  // size ts_mha remains a perf_model (cycle accounting) parameter only.
  const auto m = ws.mark();
  auto acc_q = ws.matrix_i32(sl, dk);
  auto acc_k = ws.matrix_i32(sl, dk);
  auto acc_v = ws.matrix_i32(sl, dk);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(dk));
  tensor::qgemm_bt_into(x, head.wqt, acc_q, pack, pool);
  tensor::qgemm_bt_into(x, head.wkt, acc_k, pack, pool);
  tensor::qgemm_bt_into(x, head.wvt, acc_v, pack, pool);
  if (stats != nullptr) stats->macs += 3 * sl * d * dk;

  // Bias add in the accumulator domain, then write-back requantization.
  for (size_t i = 0; i < sl; ++i) {
    for (size_t kk = 0; kk < dk; ++kk) {
      q(i, kk) = requant8(int64_t{acc_q(i, kk)} + head.bq[kk], rq_q);
      k(i, kk) = requant8(int64_t{acc_k(i, kk)} + head.bk[kk], rq_k);
      v(i, kk) = requant8(int64_t{acc_v(i, kk)} + head.bv[kk], rq_v);
    }
  }
  ws.rewind(m);
}

void run_qkv_engine(const tensor::MatrixI8& x, const QHeadWeights& head,
                    uint32_t ts_mha, const numeric::RequantParams& rq_q,
                    const numeric::RequantParams& rq_k,
                    const numeric::RequantParams& rq_v, tensor::MatrixI8& q,
                    tensor::MatrixI8& k, tensor::MatrixI8& v,
                    EngineStats* stats) {
  const size_t sl = x.rows();
  const size_t dk = head.wqt.rows();
  q = tensor::MatrixI8(sl, dk);
  k = tensor::MatrixI8(sl, dk);
  v = tensor::MatrixI8(sl, dk);
  run_qkv_engine(tensor::ConstMatrixViewI8(x), head, ts_mha, rq_q, rq_k,
                 rq_v, q, k, v, engine_scratch_arena(), stats,
                 tensor::qgemm_default_pool());
}

// --- Projection engine -------------------------------------------------------

void run_projection_engine(tensor::ConstMatrixViewI8 x,
                           tensor::ConstMatrixViewI8 wt,
                           std::span<const int32_t> bias, uint32_t ts_mha,
                           const numeric::RequantParams& rq,
                           tensor::MatrixViewI8 out,
                           runtime::WorkspaceArena& ws, EngineStats* stats,
                           util::ThreadPool* pool) {
  const size_t rows = x.rows();
  const size_t d = x.cols();
  const size_t out_dim = wt.rows();
  if (wt.cols() != d) {
    throw std::invalid_argument("run_projection_engine: width mismatch");
  }
  if (bias.size() != out_dim) {
    throw std::invalid_argument("run_projection_engine: bias mismatch");
  }
  if (ts_mha == 0) {
    throw std::invalid_argument("run_projection_engine: zero tile size");
  }
  check_out_shape(out, rows, out_dim, "run_projection_engine");

  const auto m = ws.mark();
  auto acc = ws.matrix_i32(rows, out_dim);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(out_dim));
  tensor::qgemm_bt_into(x, wt, acc, pack, pool);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t kk = 0; kk < out_dim; ++kk) {
      out(i, kk) = requant8(int64_t{acc(i, kk)} + bias[kk], rq);
    }
  }
  if (stats != nullptr) stats->macs += rows * d * out_dim;
  ws.rewind(m);
}

void run_projection_engine(const tensor::MatrixI8& x,
                           const tensor::MatrixI8& wt,
                           std::span<const int32_t> bias, uint32_t ts_mha,
                           const numeric::RequantParams& rq,
                           tensor::MatrixI8& out, EngineStats* stats) {
  out = tensor::MatrixI8(x.rows(), wt.rows());
  run_projection_engine(tensor::ConstMatrixViewI8(x),
                        tensor::ConstMatrixViewI8(wt), bias, ts_mha, rq,
                        out, engine_scratch_arena(), stats,
                        tensor::qgemm_default_pool());
}

// --- QK engine ---------------------------------------------------------------

void run_qk_engine(tensor::ConstMatrixViewI8 q, tensor::ConstMatrixViewI8 k,
                   const numeric::RequantParams& rq_logit,
                   tensor::MatrixViewI8 logits, runtime::WorkspaceArena& ws,
                   EngineStats* stats, util::ThreadPool* pool) {
  if (q.cols() != k.cols()) {
    throw std::invalid_argument("run_qk_engine: head dim mismatch");
  }
  const size_t sl_q = q.rows();
  const size_t sl_k = k.rows();
  const size_t dk = q.cols();
  check_out_shape(logits, sl_q, sl_k, "run_qk_engine");

  const auto m = ws.mark();
  auto acc = ws.matrix_i32(sl_q, sl_k);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(sl_k));
  tensor::qgemm_bt_into(q, k, acc, pack, pool);
  for (size_t i = 0; i < sl_q; ++i) {
    for (size_t j = 0; j < sl_k; ++j) {
      logits(i, j) = requant8(acc(i, j), rq_logit);
    }
  }
  if (stats != nullptr) stats->macs += sl_q * sl_k * dk;
  ws.rewind(m);
}

void run_qk_engine(tensor::ConstMatrixViewI8 q,
                   const tensor::RowSpanListI8& k,
                   const numeric::RequantParams& rq_logit,
                   tensor::MatrixViewI8 logits, runtime::WorkspaceArena& ws,
                   EngineStats* stats, util::ThreadPool* pool) {
  if (q.cols() != k.cols) {
    throw std::invalid_argument("run_qk_engine: head dim mismatch");
  }
  const size_t sl_q = q.rows();
  const size_t sl_k = k.rows;
  const size_t dk = q.cols();
  check_out_shape(logits, sl_q, sl_k, "run_qk_engine");

  const auto m = ws.mark();
  auto acc = ws.matrix_i32(sl_q, sl_k);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(sl_k));
  tensor::qgemm_bt_spans_into(q, k, acc, pack, pool);
  for (size_t i = 0; i < sl_q; ++i) {
    for (size_t j = 0; j < sl_k; ++j) {
      logits(i, j) = requant8(acc(i, j), rq_logit);
    }
  }
  if (stats != nullptr) {
    stats->macs += sl_q * sl_k * dk;
    stats->span_runs += k.runs.size();
  }
  ws.rewind(m);
}

void run_qk_softmax_engine(tensor::ConstMatrixViewI8 q,
                           const tensor::RowSpanListI8& k,
                           const numeric::RequantParams& rq_logit,
                           const SoftmaxUnit& softmax, size_t row_offset,
                           tensor::MatrixViewI8 weights,
                           runtime::WorkspaceArena& ws, EngineStats* stats,
                           util::ThreadPool* pool) {
  if (q.cols() != k.cols) {
    throw std::invalid_argument("run_qk_softmax_engine: head dim mismatch");
  }
  const size_t sl_q = q.rows();
  const size_t sl_k = k.rows;
  const size_t dk = q.cols();
  check_out_shape(weights, sl_q, sl_k, "run_qk_softmax_engine");

  const auto m = ws.mark();
  auto acc = ws.matrix_i32(sl_q, sl_k);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(sl_k));
  tensor::qgemm_bt_spans_into(q, k, acc, pack, pool);
  // The fused pass requantizes straight off the accumulator tile — the
  // int8 logits matrix (and its write + two reads) never exists.
  softmax.run_causal_fused_into(acc, rq_logit, weights, row_offset);
  if (stats != nullptr) {
    stats->macs += sl_q * sl_k * dk;
    stats->span_runs += k.runs.size();
  }
  ws.rewind(m);
}

void run_qk_engine(const tensor::MatrixI8& q, const tensor::MatrixI8& k,
                   const numeric::RequantParams& rq_logit,
                   tensor::MatrixI8& logits, EngineStats* stats) {
  logits = tensor::MatrixI8(q.rows(), k.rows());
  run_qk_engine(tensor::ConstMatrixViewI8(q), tensor::ConstMatrixViewI8(k),
                rq_logit, logits, engine_scratch_arena(), stats,
                tensor::qgemm_default_pool());
}

// --- SV engine ---------------------------------------------------------------

void run_sv_engine(tensor::ConstMatrixViewI8 attn_weights,
                   tensor::ConstMatrixViewI8 v,
                   const numeric::RequantParams& rq_sv,
                   tensor::MatrixViewI8 scores, runtime::WorkspaceArena& ws,
                   EngineStats* stats, util::ThreadPool* pool) {
  if (attn_weights.cols() != v.rows()) {
    throw std::invalid_argument("run_sv_engine: shape mismatch");
  }
  const size_t sl = attn_weights.rows();
  const size_t dk = v.cols();
  const size_t inner = v.rows();
  check_out_shape(scores, sl, dk, "run_sv_engine");

  const auto m = ws.mark();
  auto acc = ws.matrix_i32(sl, dk);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(dk));
  tensor::qgemm_into(attn_weights, v, acc, pack, pool);
  for (size_t i = 0; i < sl; ++i) {
    for (size_t j = 0; j < dk; ++j) {
      scores(i, j) = requant8(acc(i, j), rq_sv);
    }
  }
  if (stats != nullptr) stats->macs += sl * dk * inner;
  ws.rewind(m);
}

void run_sv_engine(tensor::ConstMatrixViewI8 attn_weights,
                   const tensor::RowSpanListI8& v,
                   const numeric::RequantParams& rq_sv,
                   tensor::MatrixViewI8 scores, runtime::WorkspaceArena& ws,
                   EngineStats* stats, util::ThreadPool* pool) {
  if (attn_weights.cols() != v.rows) {
    throw std::invalid_argument("run_sv_engine: shape mismatch");
  }
  const size_t sl = attn_weights.rows();
  const size_t dk = v.cols;
  const size_t inner = v.rows;
  check_out_shape(scores, sl, dk, "run_sv_engine");

  const auto m = ws.mark();
  auto acc = ws.matrix_i32(sl, dk);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(dk));
  tensor::qgemm_spans_into(attn_weights, v, acc, pack, pool);
  for (size_t i = 0; i < sl; ++i) {
    for (size_t j = 0; j < dk; ++j) {
      scores(i, j) = requant8(acc(i, j), rq_sv);
    }
  }
  if (stats != nullptr) {
    stats->macs += sl * dk * inner;
    stats->span_runs += v.runs.size();
  }
  ws.rewind(m);
}

void run_sv_engine(const tensor::MatrixI8& attn_weights,
                   const tensor::MatrixI8& v,
                   const numeric::RequantParams& rq_sv,
                   tensor::MatrixI8& scores, EngineStats* stats) {
  scores = tensor::MatrixI8(attn_weights.rows(), v.cols());
  run_sv_engine(tensor::ConstMatrixViewI8(attn_weights),
                tensor::ConstMatrixViewI8(v), rq_sv, scores,
                engine_scratch_arena(), stats,
                tensor::qgemm_default_pool());
}

// --- FFN engine --------------------------------------------------------------

void run_ffn_engine(tensor::ConstMatrixViewI8 in, tensor::ConstMatrixViewI8 w,
                    std::span<const int32_t> bias, uint32_t ts_ffn,
                    const numeric::RequantParams& rq, FfnActivation act,
                    double act_scale, tensor::MatrixViewI8 out,
                    runtime::WorkspaceArena& ws, EngineStats* stats,
                    util::ThreadPool* pool) {
  const size_t sl = in.rows();
  const size_t in_dim = in.cols();
  const size_t out_dim = w.cols();
  if (w.rows() != in_dim) {
    throw std::invalid_argument("run_ffn_engine: weight shape mismatch");
  }
  if (bias.size() != out_dim) {
    throw std::invalid_argument("run_ffn_engine: bias length mismatch");
  }
  if (ts_ffn == 0) {
    throw std::invalid_argument("run_ffn_engine: zero tile size");
  }
  check_out_shape(out, sl, out_dim, "run_ffn_engine");

  std::array<int8_t, 256> gelu_table{};
  if (act == FfnActivation::kGeluLut) {
    gelu_table = build_gelu_table(act_scale);
  }

  // Fig. 6's 2-D tiling (accumulate partial products across row tiles per
  // column tile) is exact int32 arithmetic — the packed kernel computes the
  // same sums bit-for-bit; ts_ffn stays a cycle-accounting parameter.
  const auto m = ws.mark();
  auto acc = ws.matrix_i32(sl, out_dim);
  auto pack = ws.span_i8(tensor::qgemm_pack_elems(out_dim));
  tensor::qgemm_into(in, w, acc, pack, pool);

  for (size_t i = 0; i < sl; ++i) {
    const int32_t* acc_row = acc.data() + i * out_dim;
    for (size_t j = 0; j < out_dim; ++j) {
      int8_t value = requant8(int64_t{acc_row[j]} + bias[j], rq);
      switch (act) {
        case FfnActivation::kNone:
          break;
        case FfnActivation::kRelu:
          value = std::max<int8_t>(value, 0);
          break;
        case FfnActivation::kGeluLut:
          value = gelu_table[static_cast<size_t>(int32_t{value} - kQMin)];
          break;
      }
      out(i, j) = value;
    }
  }
  if (stats != nullptr) stats->macs += sl * in_dim * out_dim;
  ws.rewind(m);
}

void run_ffn_engine(const tensor::MatrixI8& in, const tensor::MatrixI8& w,
                    std::span<const int32_t> bias, uint32_t ts_ffn,
                    const numeric::RequantParams& rq, FfnActivation act,
                    double act_scale, tensor::MatrixI8& out,
                    EngineStats* stats) {
  out = tensor::MatrixI8(in.rows(), w.cols());
  run_ffn_engine(tensor::ConstMatrixViewI8(in), tensor::ConstMatrixViewI8(w),
                 bias, ts_ffn, rq, act, act_scale, out,
                 engine_scratch_arena(), stats,
                 tensor::qgemm_default_pool());
}

}  // namespace protea::accel
