// Fixed-point softmax unit (LUT-based), the paper's "softmax function
// implemented in HLS utilizing LUTs and flip-flops".
//
// Per row of int8 logits (scale s_logit):
//   1. find the row maximum q_max (numerical stability shift);
//   2. look up exp((q - q_max) * s_logit) in a 256-entry Q0.16 table
//      (the argument q - q_max is always in [-255, 0]);
//   3. accumulate the integer sum;
//   4. emit attention weights round(127 * exp / sum) as int8 with the
//      fixed scale 1/127 (weights live in [0, 1]).
// The table depends only on the logit scale, so the host reloads it when
// it reprograms a model — a few hundred bytes over AXI-Lite.
#pragma once

#include <array>
#include <cstdint>

#include "numeric/requantize.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

class SoftmaxUnit {
 public:
  /// Builds the exp table for logits quantized at `logit_scale`.
  explicit SoftmaxUnit(double logit_scale);

  double logit_scale() const { return logit_scale_; }

  /// Softmax over each row of `logits`; output int8 at scale 1/127.
  tensor::MatrixI8 run(const tensor::MatrixI8& logits) const;

  /// Causal (masked) softmax for the decoder extension: row i normalizes
  /// over columns [0, i] only; masked positions get weight 0 — the
  /// hardware realization of Fig. 2's mask (the LUT pipeline simply
  /// skips masked lanes, so no -inf representation is needed in int8).
  tensor::MatrixI8 run_causal(const tensor::MatrixI8& logits) const;

  /// Allocation-free forms for the runtime hot path: `out` is a
  /// preallocated view with the logits' shape.
  void run_into(tensor::ConstMatrixViewI8 logits,
                tensor::MatrixViewI8 out) const;

  /// Causal mode with a cached-prefix row offset for KV-cached
  /// incremental decoding: row r sits at absolute target position
  /// `row_offset + r` and normalizes over columns
  /// [0, min(row_offset + r + 1, cols)); later (masked) columns get
  /// weight 0. `row_offset = 0` is the classic full-square causal mask;
  /// a decode step passes the cached length so its single row spans the
  /// whole prefix plus itself.
  void run_causal_into(tensor::ConstMatrixViewI8 logits,
                       tensor::MatrixViewI8 out,
                       size_t row_offset = 0) const;

  /// Fused dequant→softmax→requant for the cached decode path: consumes
  /// the QK engine's int32 accumulator tile directly, requantizing each
  /// lane exactly once with `rq` (the logit requant constants) into the
  /// output row, then running the max/sum/emit LUT passes in place while
  /// the row is cache-hot — no separate int8 logits tile is ever
  /// materialized. The staged logit values equal what the standalone QK
  /// engine would have written, so the result is bit-identical to
  /// requantize-then-run_causal_into. Same causal-mask semantics as
  /// run_causal_into.
  void run_causal_fused_into(tensor::ConstMatrixViewI32 acc,
                             const numeric::RequantParams& rq,
                             tensor::MatrixViewI8 out,
                             size_t row_offset = 0) const;

  /// Table entry for a shift of `delta` = q_max - q (delta in [0, 255]):
  /// round(exp(-delta * scale) * 2^16).
  uint32_t table_entry(uint32_t delta) const { return exp_table_.at(delta); }

 private:
  double logit_scale_;
  std::array<uint32_t, 256> exp_table_{};
};

}  // namespace protea::accel
