// Analytic performance model of a programmed ProTEA accelerator.
//
// Latency falls out of the loop structure of Algorithms 1-4 plus the
// hardware substrate models:
//   * pipelined middle loops at the achieved initiation interval
//     (hw::achieved_ii), `pipeline off` outer loops serialized;
//   * a calibrated pipeline depth paid once per outer-loop iteration
//     (TimingConstants::pipeline_depth);
//   * runtime-programmed loop bounds where the paper's Table I scaling
//     shows them adapting, synthesis-frozen bounds where it shows they
//     do not (PaddingPolicy);
//   * double-buffered HBM tile loads overlapped with compute
//     (hw::overlapped_tiles), or serialized for the ablation.
//
// The same report also carries throughput (GOPS), DSP utilization and
// HBM traffic, everything Tables I-III print.
#pragma once

#include <string>
#include <vector>

#include "accel/accel_config.hpp"
#include "hw/clock.hpp"
#include "ref/model_config.hpp"

namespace protea::accel {

struct StageTiming {
  std::string name;
  uint64_t invocations = 0;     // tile iterations or engine accesses
  hw::Cycles compute = 0;       // pure compute cycles per layer
  hw::Cycles total = 0;         // with load overlap applied, per layer
  uint64_t bytes_loaded = 0;    // HBM traffic per layer
};

struct PerfReport {
  std::vector<StageTiming> stages;  // one encoder layer (layers identical)
  hw::Cycles layer_cycles = 0;
  hw::Cycles total_cycles = 0;
  double fmax_mhz = 0.0;
  double latency_ms = 0.0;
  uint64_t macs = 0;
  uint64_t ops = 0;
  double gops = 0.0;             // ops / latency
  double dsp_utilization = 0.0;  // MACs / (engine PEs * total cycles)
  uint64_t bytes_loaded = 0;     // full forward pass

  const StageTiming& stage(const std::string& name) const;
};

/// Estimates a full forward pass of `model` on hardware `config`.
/// Throws when the runtime program does not fit the synthesis
/// (validate_runtime).
PerfReport estimate_performance(const AccelConfig& config,
                                const ref::ModelConfig& model);

/// Fraction of FFN weight tiles that still contain nonzeros after
/// pruning — the tiles a tile-skipping controller must schedule (see
/// baseline/pruning.hpp for computing these from pruned weights).
struct FfnStageOccupancy {
  double ffn1 = 1.0;
  double ffn2 = 1.0;
  double ffn3 = 1.0;
};

/// Hypothetical tile-skipping ProTEA variant: the FFN engines schedule
/// only occupied weight tiles, turning structured sparsity into
/// proportionally fewer engine accesses. This is the hardware the
/// paper's §V sparsity arithmetic imagines; comparing it against
/// (1 - sparsity) x dense shows how much of the ideal a tile-granular
/// skip can actually capture.
PerfReport estimate_sparse_performance(const AccelConfig& config,
                                       const ref::ModelConfig& model,
                                       const FfnStageOccupancy& occupancy);

}  // namespace protea::accel
