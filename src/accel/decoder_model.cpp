#include "accel/decoder_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/quantizer.hpp"

namespace protea::accel {
namespace {

using numeric::Quantizer;

double max_abs(const tensor::MatrixF& m) {
  double v = 0.0;
  for (float x : m.flat()) v = std::max(v, std::abs(static_cast<double>(x)));
  return v;
}

double max_abs(const std::vector<tensor::MatrixF>& ms) {
  double v = 0.0;
  for (const auto& m : ms) v = std::max(v, max_abs(m));
  return v;
}

double pow2_scale(double range, double margin) {
  const double needed = std::max(range * margin, 1e-6) / 127.0;
  return std::exp2(std::ceil(std::log2(needed)));
}

/// Quantizes a transposed head slice of `src` (cols [c0, c0+n)) with a
/// caller-fixed scale.
void quantize_head_slice(const tensor::MatrixF& src, size_t col0,
                         size_t ncols, double scale,
                         tensor::MatrixI8& dst) {
  Quantizer q(8, true);
  q.set_scale(scale);
  tensor::MatrixF t(ncols, src.rows());
  for (size_t r = 0; r < src.rows(); ++r) {
    for (size_t c = 0; c < ncols; ++c) t(c, r) = src(r, col0 + c);
  }
  dst = tensor::MatrixI8(ncols, src.rows());
  q.quantize(t.flat(), dst.flat());
}

/// Shared pow2 scale covering all head slices of a (d x d) projection.
double projection_scale(const tensor::MatrixF& w) {
  Quantizer q(8, true);
  return q.calibrate(w.flat());
}

double quantize_matrix(const tensor::MatrixF& src, tensor::MatrixI8& dst) {
  Quantizer q(8, true);
  const double scale = q.calibrate(src.flat());
  dst = tensor::MatrixI8(src.rows(), src.cols());
  q.quantize(src.flat(), dst.flat());
  return scale;
}

std::vector<int32_t> scale_bias(std::span<const float> bias, double s_acc,
                                size_t offset, size_t count) {
  std::vector<int32_t> out(count);
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<int32_t>(
        std::llround(static_cast<double>(bias[offset + i]) / s_acc));
  }
  return out;
}

}  // namespace

std::vector<DecoderLayerScales> calibrate_decoder_scales(
    const ref::Decoder& decoder, const tensor::MatrixF& target,
    const tensor::MatrixF& memory, double margin) {
  if (!(margin >= 1.0)) {
    throw std::invalid_argument("calibrate_decoder_scales: margin < 1");
  }
  std::vector<ref::DecoderLayerTrace> traces;
  decoder.forward_traced(target, memory, traces);

  const auto& cfg = decoder.config();
  const double scale_factor =
      cfg.attn_scale == ref::AttnScale::kInvSqrtDk
          ? 1.0 / std::sqrt(static_cast<double>(cfg.head_dim()))
          : 1.0 / static_cast<double>(cfg.d_model);
  const double sqrt_dk = std::sqrt(static_cast<double>(cfg.head_dim()));
  const double memory_scale = pow2_scale(max_abs(memory), margin);

  std::vector<DecoderLayerScales> scales(traces.size());
  tensor::MatrixF layer_input = target;
  for (size_t l = 0; l < traces.size(); ++l) {
    const auto& t = traces[l];
    DecoderLayerScales& s = scales[l];
    s.x = pow2_scale(max_abs(layer_input), margin);
    s.memory = memory_scale;
    s.q = pow2_scale(max_abs(t.self_q), margin);
    s.k = pow2_scale(max_abs(t.self_k), margin);
    s.v = pow2_scale(max_abs(t.self_v), margin);
    s.logit =
        pow2_scale(sqrt_dk * max_abs(t.self_q) * max_abs(t.self_k) *
                       scale_factor,
                   margin);
    s.sv = pow2_scale(max_abs(t.self_concat), margin);
    s.proj = pow2_scale(max_abs(t.self_proj), margin);
    s.ln1 = pow2_scale(max_abs(t.ln1_out), margin);
    s.cq = pow2_scale(max_abs(t.cross_q), margin);
    s.ck = pow2_scale(max_abs(t.cross_k), margin);
    s.cv = pow2_scale(max_abs(t.cross_v), margin);
    s.clogit =
        pow2_scale(sqrt_dk * max_abs(t.cross_q) * max_abs(t.cross_k) *
                       scale_factor,
                   margin);
    s.csv = pow2_scale(max_abs(t.cross_concat), margin);
    s.cproj = pow2_scale(max_abs(t.cross_proj), margin);
    s.ln2 = pow2_scale(max_abs(t.ln2_out), margin);
    s.hidden = pow2_scale(max_abs(t.ffn_hidden), margin);
    s.ffn_out = pow2_scale(max_abs(t.ffn_out), margin);
    s.ln3 = pow2_scale(max_abs(t.ln3_out), margin);
    layer_input = t.ln3_out;
  }
  return scales;
}

QuantizedDecoder quantize_decoder(
    const ref::DecoderWeights& weights,
    const std::vector<DecoderLayerScales>& scales) {
  const ref::ModelConfig& cfg = weights.config;
  cfg.validate();
  if (scales.size() != weights.layers.size()) {
    throw std::invalid_argument("quantize_decoder: scales/layers mismatch");
  }

  const size_t dk = cfg.head_dim();
  const double attn_scale_factor =
      cfg.attn_scale == ref::AttnScale::kInvSqrtDk
          ? 1.0 / std::sqrt(static_cast<double>(dk))
          : 1.0 / static_cast<double>(cfg.d_model);

  QuantizedDecoder qd;
  qd.config = cfg;
  qd.memory_scale = scales.front().memory;
  qd.layers.resize(weights.layers.size());

  for (size_t li = 0; li < weights.layers.size(); ++li) {
    const auto& src = weights.layers[li];
    QDecoderLayer& dst = qd.layers[li];
    dst.scales = scales[li];
    const DecoderLayerScales& s = dst.scales;

    const double swq = projection_scale(src.wq);
    const double swk = projection_scale(src.wk);
    const double swv = projection_scale(src.wv);
    const double scq = projection_scale(src.cq);
    const double sck = projection_scale(src.ck);
    const double scv = projection_scale(src.cv);

    dst.self_heads.resize(cfg.num_heads);
    dst.cross_heads.resize(cfg.num_heads);
    for (size_t h = 0; h < cfg.num_heads; ++h) {
      auto& sh = dst.self_heads[h];
      quantize_head_slice(src.wq, h * dk, dk, swq, sh.wqt);
      quantize_head_slice(src.wk, h * dk, dk, swk, sh.wkt);
      quantize_head_slice(src.wv, h * dk, dk, swv, sh.wvt);
      sh.bq = scale_bias(src.bq, s.x * swq, h * dk, dk);
      sh.bk = scale_bias(src.bk, s.x * swk, h * dk, dk);
      sh.bv = scale_bias(src.bv, s.x * swv, h * dk, dk);

      auto& ch = dst.cross_heads[h];
      quantize_head_slice(src.cq, h * dk, dk, scq, ch.cqt);
      quantize_head_slice(src.ck, h * dk, dk, sck, ch.ckt);
      quantize_head_slice(src.cv, h * dk, dk, scv, ch.cvt);
      ch.cbq = scale_bias(src.cbq, s.ln1 * scq, h * dk, dk);
      ch.cbk = scale_bias(src.cbk, s.memory * sck, h * dk, dk);
      ch.cbv = scale_bias(src.cbv, s.memory * scv, h * dk, dk);
    }

    const double swo = quantize_matrix(src.wo, dst.wo);
    const double sco = quantize_matrix(src.co, dst.co);
    const double sw1 = quantize_matrix(src.w1, dst.w1);
    const double sw2 = quantize_matrix(src.w2, dst.w2);
    dst.bo = scale_bias(src.bo, s.sv * swo, 0, src.bo.size());
    dst.cbo = scale_bias(src.cbo, s.csv * sco, 0, src.cbo.size());
    dst.b1 = scale_bias(src.b1, s.ln2 * sw1, 0, src.b1.size());
    dst.b2 = scale_bias(src.b2, s.hidden * sw2, 0, src.b2.size());

    dst.ln1_gamma = src.ln1_gamma;
    dst.ln1_beta = src.ln1_beta;
    dst.ln2_gamma = src.ln2_gamma;
    dst.ln2_beta = src.ln2_beta;
    dst.ln3_gamma = src.ln3_gamma;
    dst.ln3_beta = src.ln3_beta;

    using numeric::make_requant_params;
    dst.rq_q = make_requant_params(s.x * swq / s.q);
    dst.rq_k = make_requant_params(s.x * swk / s.k);
    dst.rq_v = make_requant_params(s.x * swv / s.v);
    dst.rq_logit =
        make_requant_params(s.q * s.k * attn_scale_factor / s.logit);
    dst.rq_sv = make_requant_params(s.attn_w * s.v / s.sv);
    dst.rq_proj = make_requant_params(s.sv * swo / s.proj);
    dst.rq_cq = make_requant_params(s.ln1 * scq / s.cq);
    dst.rq_ck = make_requant_params(s.memory * sck / s.ck);
    dst.rq_cv = make_requant_params(s.memory * scv / s.cv);
    dst.rq_clogit =
        make_requant_params(s.cq * s.ck * attn_scale_factor / s.clogit);
    dst.rq_csv = make_requant_params(s.attn_w * s.cv / s.csv);
    dst.rq_cproj = make_requant_params(s.csv * sco / s.cproj);
    dst.rq_hidden = make_requant_params(s.ln2 * sw1 / s.hidden);
    dst.rq_ffn_out = make_requant_params(s.hidden * sw2 / s.ffn_out);
  }
  return qd;
}

QuantizedDecoder prepare_decoder(const ref::DecoderWeights& weights,
                                 const tensor::MatrixF& target,
                                 const tensor::MatrixF& memory) {
  ref::Decoder decoder(weights);
  return quantize_decoder(
      weights, calibrate_decoder_scales(decoder, target, memory));
}

}  // namespace protea::accel
