// Feed-forward network module (paper Fig. 4): FFN1_CE (attention output
// projection) -> LN -> FFN2_CE (expansion + activation) -> FFN3_CE
// (contraction) -> LN, with both residual connections.
//
// The execution now lives in the runtime layer (runtime/layer_ops.hpp,
// run_encoder_ffn_stage); this wrapper keeps the original owning-Matrix
// API on top of it.
#pragma once

#include "accel/engines.hpp"
#include "accel/quantized_model.hpp"
#include "ref/model_config.hpp"
#include "runtime/layer_ops.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

class FfnModule {
 public:
  using Trace = runtime::FfnTrace;

  /// `attn` is the concatenated attention output (scale sv); `x` the layer
  /// input (scale x, residual operand). Returns the layer output at scale
  /// ln2. `ts_ffn` is the synthesized FFN tile size.
  static tensor::MatrixI8 run(const QLayer& layer,
                              const tensor::MatrixI8& attn,
                              const tensor::MatrixI8& x, uint32_t ts_ffn,
                              ref::Activation activation,
                              EngineStats* stats = nullptr,
                              Trace* trace = nullptr);
};

}  // namespace protea::accel
