// Feed-forward network module (paper Fig. 4): FFN1_CE (attention output
// projection) -> LN -> FFN2_CE (expansion + activation) -> FFN3_CE
// (contraction) -> LN, with both residual connections.
#pragma once

#include "accel/engines.hpp"
#include "accel/quantized_model.hpp"
#include "ref/model_config.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

class FfnModule {
 public:
  struct Trace {
    tensor::MatrixI8 proj;      // FFN1 output (scale proj)
    tensor::MatrixI8 ln1;       // post-attention LN (scale ln1)
    tensor::MatrixI8 hidden;    // FFN2 + activation (scale hidden)
    tensor::MatrixI8 ffn_out;   // FFN3 output (scale ffn_out)
  };

  /// `attn` is the concatenated attention output (scale sv); `x` the layer
  /// input (scale x, residual operand). Returns the layer output at scale
  /// ln2. `ts_ffn` is the synthesized FFN tile size.
  static tensor::MatrixI8 run(const QLayer& layer,
                              const tensor::MatrixI8& attn,
                              const tensor::MatrixI8& x, uint32_t ts_ffn,
                              ref::Activation activation,
                              EngineStats* stats = nullptr,
                              Trace* trace = nullptr);
};

}  // namespace protea::accel
