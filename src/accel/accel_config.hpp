// Accelerator configuration: synthesis parameters + simulation knobs +
// runtime-programming validation.
#pragma once

#include <stdexcept>

#include "hw/clock.hpp"
#include "hw/synth_params.hpp"
#include "ref/model_config.hpp"

namespace protea::accel {

/// How the FFN engines treat a runtime d_model smaller than the
/// synthesized maximum. Table I's latency scaling (186 ms at d=512 =
/// exactly 8/12 of the 768 baseline) implies the row-tile loop bound stays
/// at its synthesis value — the hardware walks zero-padded row tiles —
/// while the column-tile count adapts at runtime. kRuntimeAdaptive is the
/// hypothetical fully-adaptive controller, kept as an ablation.
enum class PaddingPolicy {
  kSynthFixedRows,   // paper behaviour (default)
  kRuntimeAdaptive,  // ablation: both tile loops shrink with d_model
};

/// Calibrated micro-architecture timing constants (see EXPERIMENTS.md,
/// "Latency calibration"). The pipeline depth is the single fitted value:
/// it covers BRAM read latency, the DSP cascade through the unrolled
/// reduction, and the accumulation write-back — ~87 cycles for a 64–128
/// wide tree, fitted so the BERT-variant baseline lands on Table I's
/// 279 ms; every other Table I row then follows structurally.
struct TimingConstants {
  hw::Cycles pipeline_depth = 87;
  hw::Cycles softmax_row_overhead = 32;  // divider latency + control
  uint32_t ln_lanes = 8;                 // LN elements processed per cycle
  hw::Cycles ln_row_overhead = 40;       // rsqrt Newton iterations + control
  hw::Cycles tile_control = 0;           // extra cycles per tile switch
};

struct AccelConfig {
  hw::SynthParams synth;
  TimingConstants timing;
  PaddingPolicy padding = PaddingPolicy::kSynthFixedRows;
  bool overlap_loads = true;  // double-buffered tile loading (paper §V)

  void validate() const { synth.validate(); }
};

/// Checks that a runtime model program fits the synthesized hardware —
/// the bound-checking ProTEA's MicroBlaze software performs before
/// activating the accelerator (§IV-D). Throws std::invalid_argument with
/// a precise message on violation.
inline void validate_runtime(const hw::SynthParams& synth,
                             const ref::ModelConfig& model) {
  model.validate();
  if (model.d_model > synth.max_d_model) {
    throw std::invalid_argument(
        "runtime d_model exceeds synthesized maximum");
  }
  if (model.seq_len > synth.max_seq_len) {
    throw std::invalid_argument(
        "runtime seq_len exceeds synthesized maximum");
  }
  if (model.num_heads > synth.max_heads) {
    throw std::invalid_argument(
        "runtime num_heads exceeds synthesized head engines");
  }
  if (model.ffn_hidden() > synth.max_ffn_dim()) {
    throw std::invalid_argument(
        "runtime FFN width exceeds synthesized maximum");
  }
}

}  // namespace protea::accel
