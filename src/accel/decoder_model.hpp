// Quantized decoder model: layout, calibration and requantization
// constants for the decoder extension (the paper's §VI future work,
// implemented with the same engine/tiling principles as the encoder).
#pragma once

#include <vector>

#include "accel/quantized_model.hpp"
#include "ref/decoder.hpp"

namespace protea::accel {

/// Per-tensor power-of-two scales for one decoder layer.
struct DecoderLayerScales {
  double x = 1.0;          // layer input (target stream)
  double memory = 1.0;     // encoder memory (shared across layers)
  // Masked self-attention.
  double q = 1.0, k = 1.0, v = 1.0;
  double logit = 1.0;
  double attn_w = 1.0 / 127.0;
  double sv = 1.0;
  double proj = 1.0;
  double ln1 = 1.0;
  // Cross-attention.
  double cq = 1.0, ck = 1.0, cv = 1.0;
  double clogit = 1.0;
  double csv = 1.0;
  double cproj = 1.0;
  double ln2 = 1.0;
  // FFN.
  double hidden = 1.0;
  double ffn_out = 1.0;
  double ln3 = 1.0;
};

/// Per-head transposed cross-attention weights: queries projected from
/// the decoder stream, keys/values from the encoder memory.
struct QCrossHeadWeights {
  tensor::MatrixI8 cqt, ckt, cvt;      // (d_k x d_model)
  std::vector<int32_t> cbq, cbk, cbv;  // accumulator-scale biases
};

struct QDecoderLayer {
  // Self-attention reuses the encoder's per-head layout and engines.
  std::vector<QHeadWeights> self_heads;
  tensor::MatrixI8 wo;
  std::vector<int32_t> bo;
  std::vector<QCrossHeadWeights> cross_heads;
  tensor::MatrixI8 co;
  std::vector<int32_t> cbo;
  tensor::MatrixI8 w1;
  std::vector<int32_t> b1;
  tensor::MatrixI8 w2;
  std::vector<int32_t> b2;
  std::vector<float> ln1_gamma, ln1_beta;
  std::vector<float> ln2_gamma, ln2_beta;
  std::vector<float> ln3_gamma, ln3_beta;

  DecoderLayerScales scales;
  numeric::RequantParams rq_q, rq_k, rq_v, rq_logit, rq_sv, rq_proj;
  numeric::RequantParams rq_cq, rq_ck, rq_cv, rq_clogit, rq_csv, rq_cproj;
  numeric::RequantParams rq_hidden, rq_ffn_out;
};

struct QuantizedDecoder {
  ref::ModelConfig config;
  double memory_scale = 1.0;
  std::vector<QDecoderLayer> layers;
};

/// Calibrates scales from a traced float run on (target, memory).
std::vector<DecoderLayerScales> calibrate_decoder_scales(
    const ref::Decoder& decoder, const tensor::MatrixF& target,
    const tensor::MatrixF& memory, double margin = 1.25);

QuantizedDecoder quantize_decoder(
    const ref::DecoderWeights& weights,
    const std::vector<DecoderLayerScales>& scales);

/// Calibrate + quantize in one step.
QuantizedDecoder prepare_decoder(const ref::DecoderWeights& weights,
                                 const tensor::MatrixF& target,
                                 const tensor::MatrixF& memory);

}  // namespace protea::accel
