#include "accel/decoder_accelerator.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/frequency_model.hpp"
#include "hw/hbm.hpp"
#include "hw/resource_model.hpp"
#include "runtime/inference_session.hpp"
#include "util/math_util.hpp"

namespace protea::accel {
namespace {

/// FFN-engine tile geometry shared by the full-forward and incremental
/// cycle models (one source of truth for the PaddingPolicy handling).
/// `per_access` is the per-target-row engine access cost; callers
/// multiply by their row count.
struct FfnTiling {
  uint64_t rows_d = 0, rows_f = 0, cols_d = 0, cols_f = 0;
  hw::Cycles per_access = 0;
};

FfnTiling ffn_tiling(const AccelConfig& config, uint64_t d, uint64_t f) {
  const hw::SynthParams& sp = config.synth;
  const bool fixed_rows = config.padding == PaddingPolicy::kSynthFixedRows;
  const auto ts_ffn = static_cast<uint64_t>(sp.ts_ffn);
  using util::ceil_div;
  FfnTiling t;
  t.rows_d = fixed_rows ? sp.tiles_ffn_max() : ceil_div(d, ts_ffn);
  t.rows_f = fixed_rows ? 4ull * sp.tiles_ffn_max() : ceil_div(f, ts_ffn);
  t.cols_d = ceil_div(d, ts_ffn);
  t.cols_f = ceil_div(f, ts_ffn);
  t.per_access = hw::pipelined_loop(ts_ffn, hw::achieved_ii(2 * sp.ts_ffn),
                                    config.timing.pipeline_depth);
  return t;
}

/// Shared tail of every decoder cycle model: derives clocking, latency,
/// throughput and DSP utilization from total_cycles and macs.
void finalize_report(const AccelConfig& config, PerfReport& report) {
  report.fmax_mhz = hw::fmax_mhz(config.synth);
  report.latency_ms = hw::cycles_to_ms(report.total_cycles, report.fmax_mhz);
  report.ops = 2 * report.macs;
  report.gops =
      static_cast<double>(report.ops) / (report.latency_ms * 1e-3) / 1e9;
  const auto resources = hw::estimate_resources(config.synth);
  report.dsp_utilization =
      static_cast<double>(report.macs) /
      (static_cast<double>(resources.total_pes) *
       static_cast<double>(report.total_cycles));
}

}  // namespace

ProteaDecoderAccelerator::ProteaDecoderAccelerator(AccelConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void ProteaDecoderAccelerator::load_model(QuantizedDecoder model) {
  validate_runtime(config_.synth, model.config);
  gen_.reset();  // bound to the previous model's weights and shapes
  model_ = std::move(model);
  stats_ = EngineStats{};
}

const QuantizedDecoder& ProteaDecoderAccelerator::model() const {
  if (!model_) {
    throw std::logic_error("ProteaDecoderAccelerator: no model loaded");
  }
  return *model_;
}

tensor::MatrixF ProteaDecoderAccelerator::forward(
    const tensor::MatrixF& target, const tensor::MatrixF& memory) {
  const QuantizedDecoder& qd = model();
  // Single decoder forward implementation shared with the serving runtime
  // (runtime/inference_session.hpp): masked self-attention,
  // cross-attention and FFN all sequence the unified layer-op blocks.
  tensor::MatrixF result;
  runtime::decoder_forward_into(qd, config_, target, memory, ws_, &stats_,
                                result);
  return result;
}

tensor::MatrixF ProteaDecoderAccelerator::prefill(
    const tensor::MatrixF& prefix, const tensor::MatrixF& memory) {
  const QuantizedDecoder& qd = model();
  if (gen_ == nullptr) {
    gen_ = std::make_unique<runtime::GenerationSession>(config_, qd,
                                                        &stats_);
  }
  tensor::MatrixF states;
  gen_->prefill(prefix, memory, states);
  return states;
}

tensor::MatrixF ProteaDecoderAccelerator::decode_step(
    const tensor::MatrixF& token) {
  if (gen_ == nullptr) {
    throw std::logic_error(
        "ProteaDecoderAccelerator: prefill() before decode_step()");
  }
  tensor::MatrixF state;
  gen_->decode_step(token, state);
  return state;
}

size_t ProteaDecoderAccelerator::generation_position() const {
  return gen_ != nullptr ? gen_->position() : 0;
}

PerfReport ProteaDecoderAccelerator::performance(
    uint32_t target_len, uint32_t memory_len) const {
  return estimate_decoder_performance(config_, model().config, target_len,
                                      memory_len);
}

PerfReport ProteaDecoderAccelerator::step_performance(
    uint32_t pos, uint32_t memory_len) const {
  return estimate_decode_step_performance(config_, model().config, pos,
                                          memory_len);
}

PerfReport estimate_decoder_performance(const AccelConfig& config,
                                        const ref::ModelConfig& model,
                                        uint32_t target_len,
                                        uint32_t memory_len) {
  config.validate();
  validate_runtime(config.synth, model);
  if (target_len == 0 || target_len > model.seq_len) {
    throw std::invalid_argument("decoder perf: bad target length");
  }
  if (memory_len == 0 || memory_len > config.synth.max_seq_len) {
    throw std::invalid_argument("decoder perf: bad memory length");
  }

  const hw::SynthParams& sp = config.synth;
  const TimingConstants& tc = config.timing;
  const uint64_t t_len = target_len;
  const uint64_t s_len = memory_len;
  const uint64_t d = model.d_model;
  const uint64_t dk = d / model.num_heads;
  const uint64_t f = model.ffn_hidden();
  const hw::Cycles depth = tc.pipeline_depth;
  using util::ceil_div;

  PerfReport report;
  const uint64_t tiles_d = ceil_div(d, static_cast<uint64_t>(sp.ts_mha));
  const uint32_t ii_qkv = hw::achieved_ii(4 * sp.ts_mha);
  const uint32_t ii_proj = hw::achieved_ii(2 * sp.ts_mha);

  auto add_stage = [&report](const char* name, uint64_t invocations,
                             hw::Cycles cycles) {
    report.stages.push_back(StageTiming{
        .name = name, .invocations = invocations, .compute = cycles,
        .total = cycles, .bytes_loaded = 0});
  };

  // Self-attention (engines in parallel across heads).
  add_stage("self_qkv", tiles_d,
            tiles_d * t_len * hw::pipelined_loop(dk, ii_qkv, depth));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
    add_stage("self_qk", 1, t_len * hw::pipelined_loop(t_len, ii, depth));
  }
  add_stage("self_softmax", 1,
            t_len * (2 * t_len + tc.softmax_row_overhead));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(t_len, static_cast<uint64_t>(sp.sl_unroll)));
    add_stage("self_sv", 1, t_len * hw::pipelined_loop(dk, ii, depth));
  }

  // Cross-attention: Q from the target stream, K/V streamed over the
  // encoder memory — single-projection passes at half the QKV engine's
  // read parallelism.
  add_stage("cross_q", tiles_d,
            tiles_d * t_len * hw::pipelined_loop(dk, ii_proj, depth));
  add_stage("cross_kv", tiles_d,
            2 * tiles_d * s_len * hw::pipelined_loop(dk, ii_proj, depth));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
    add_stage("cross_qk", 1, t_len * hw::pipelined_loop(s_len, ii, depth));
  }
  add_stage("cross_softmax", 1,
            t_len * (2 * s_len + tc.softmax_row_overhead));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(s_len, static_cast<uint64_t>(sp.sl_unroll)));
    add_stage("cross_sv", 1, t_len * hw::pipelined_loop(dk, ii, depth));
  }

  // Projections + FFN on the FFN engines (same tiling rules as encoder).
  const FfnTiling ft = ffn_tiling(config, d, f);
  const hw::Cycles per_access = t_len * ft.per_access;
  add_stage("self_proj", ft.rows_d * ft.cols_d,
            ft.rows_d * ft.cols_d * per_access);
  add_stage("cross_proj", ft.rows_d * ft.cols_d,
            ft.rows_d * ft.cols_d * per_access);
  add_stage("ffn_expand", ft.rows_d * ft.cols_f,
            ft.rows_d * ft.cols_f * per_access);
  add_stage("ffn_contract", ft.rows_f * ft.cols_d,
            ft.rows_f * ft.cols_d * per_access);

  const hw::Cycles ln_row =
      3 * ceil_div(d, static_cast<uint64_t>(tc.ln_lanes)) +
      tc.ln_row_overhead;
  add_stage("layernorm", 3, 3 * t_len * ln_row);

  for (const auto& stage : report.stages) {
    report.layer_cycles += stage.total;
  }
  report.total_cycles = report.layer_cycles * model.num_layers;

  // Operation counts for a decoder stack.
  const uint64_t self_macs =
      3 * t_len * d * d + 2 * t_len * t_len * d + t_len * d * d;
  const uint64_t cross_macs = t_len * d * d + 2 * s_len * d * d +
                              2 * t_len * s_len * d + t_len * d * d;
  const uint64_t ffn_macs = 2 * t_len * d * f;
  report.macs = model.num_layers * (self_macs + cross_macs + ffn_macs);
  finalize_report(config, report);
  return report;
}

PerfReport estimate_decode_step_performance(const AccelConfig& config,
                                            const ref::ModelConfig& model,
                                            uint32_t pos,
                                            uint32_t memory_len,
                                            bool kv_gather_fallback,
                                            numeric::KvStorage kv_storage) {
  config.validate();
  validate_runtime(config.synth, model);
  if (pos >= model.seq_len) {
    throw std::invalid_argument("decode step perf: bad position");
  }
  if (memory_len == 0 || memory_len > config.synth.max_seq_len) {
    throw std::invalid_argument("decode step perf: bad memory length");
  }

  const hw::SynthParams& sp = config.synth;
  const TimingConstants& tc = config.timing;
  const uint64_t kv_len = uint64_t{pos} + 1;  // cached prefix + this row
  const uint64_t s_len = memory_len;
  const uint64_t d = model.d_model;
  const uint64_t dk = d / model.num_heads;
  const uint64_t f = model.ffn_hidden();
  const hw::Cycles depth = tc.pipeline_depth;
  using util::ceil_div;

  PerfReport report;
  const uint64_t tiles_d = ceil_div(d, static_cast<uint64_t>(sp.ts_mha));
  const uint32_t ii_qkv = hw::achieved_ii(4 * sp.ts_mha);
  const uint32_t ii_proj = hw::achieved_ii(2 * sp.ts_mha);

  auto add_stage = [&report](const char* name, uint64_t invocations,
                             hw::Cycles cycles) {
    report.stages.push_back(StageTiming{
        .name = name, .invocations = invocations, .compute = cycles,
        .total = cycles, .bytes_loaded = 0});
  };

  // Self-attention: one query row; K/V of the new row append into the
  // cache and QK/softmax/SV span the kv_len cached rows.
  add_stage("self_qkv", tiles_d,
            tiles_d * hw::pipelined_loop(dk, ii_qkv, depth));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
    add_stage("self_qk", 1, hw::pipelined_loop(kv_len, ii, depth));
  }
  add_stage("self_softmax", 1, 2 * kv_len + tc.softmax_row_overhead);
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(kv_len, static_cast<uint64_t>(sp.sl_unroll)));
    add_stage("self_sv", 1, hw::pipelined_loop(dk, ii, depth));
  }

  // Cross-attention: only the Q projection of the new row is computed —
  // the memory's K/V projections were cached at prefill, so the per-step
  // cross_kv stage (the full model's dominant memory-length term)
  // disappears entirely.
  add_stage("cross_q", tiles_d,
            tiles_d * hw::pipelined_loop(dk, ii_proj, depth));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
    add_stage("cross_qk", 1, hw::pipelined_loop(s_len, ii, depth));
  }
  add_stage("cross_softmax", 1, 2 * s_len + tc.softmax_row_overhead);
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(s_len, static_cast<uint64_t>(sp.sl_unroll)));
    add_stage("cross_sv", 1, hw::pipelined_loop(dk, ii, depth));
  }

  // Single-row projections + FFN on the FFN engines.
  const FfnTiling ft = ffn_tiling(config, d, f);
  add_stage("self_proj", ft.rows_d * ft.cols_d,
            ft.rows_d * ft.cols_d * ft.per_access);
  add_stage("cross_proj", ft.rows_d * ft.cols_d,
            ft.rows_d * ft.cols_d * ft.per_access);
  add_stage("ffn_expand", ft.rows_d * ft.cols_f,
            ft.rows_d * ft.cols_f * ft.per_access);
  add_stage("ffn_contract", ft.rows_f * ft.cols_d,
            ft.rows_f * ft.cols_d * ft.per_access);

  const hw::Cycles ln_row =
      3 * ceil_div(d, static_cast<uint64_t>(tc.ln_lanes)) +
      tc.ln_row_overhead;
  add_stage("layernorm", 3, 3 * ln_row);

  // Legacy gather fallback only: every head copies its 2 x kv_len x dk
  // cached prefix into contiguous scratch before QK/SV. Pure data
  // movement (no engine cycles) — the block-strided default streams the
  // block table in place and moves none of it.
  if (kv_gather_fallback) {
    // Quantized storage shrinks the copied bytes to the stored width
    // (the gather decodes through the codec LUT as it stages — pure
    // data movement either way).
    report.stages.push_back(StageTiming{
        .name = "self_gather",
        .invocations = model.num_heads,
        .compute = 0,
        .total = 0,
        .bytes_loaded = uint64_t{model.num_heads} *
                        numeric::kv_storage_bytes(2 * kv_len * dk, kv_storage)});
  } else if (kv_storage != numeric::KvStorage::kInt8) {
    // Block-strided path over a quantized cache: the QK/SV pack stage
    // streams the stored codes and decodes them through the 256-entry
    // LUT in flight. Zero engine cycles (the LUT rides the existing
    // pack loop), but the stored prefix bytes are real traffic the
    // int8 path's in-place reads don't re-count — model them so the
    // energy/bandwidth side of a quantized run is honest.
    report.stages.push_back(StageTiming{
        .name = "kv_dequant",
        .invocations = model.num_heads,
        .compute = 0,
        .total = 0,
        .bytes_loaded = uint64_t{model.num_heads} *
                        numeric::kv_storage_bytes(2 * kv_len * dk, kv_storage)});
  }

  for (const auto& stage : report.stages) {
    report.layer_cycles += stage.total;
    report.bytes_loaded += stage.bytes_loaded;
  }
  report.total_cycles = report.layer_cycles * model.num_layers;
  report.bytes_loaded *= model.num_layers;

  // Per-step MAC count, matching the executed incremental schedule (and
  // the EngineStats deltas a real decode_step records).
  const uint64_t self_macs = 3 * d * d + 2 * kv_len * d + d * d;
  const uint64_t cross_macs = d * d + 2 * s_len * d + d * d;
  const uint64_t ffn_macs = 2 * d * f;
  report.macs = model.num_layers * (self_macs + cross_macs + ffn_macs);
  finalize_report(config, report);
  return report;
}

KvFootprint estimate_kv_footprint(const ref::ModelConfig& model,
                                  uint32_t rows, uint32_t block_rows,
                                  numeric::KvStorage storage) {
  if (rows == 0 || rows > model.seq_len || block_rows == 0) {
    throw std::invalid_argument("kv footprint: bad rows/block_rows");
  }
  KvFootprint fp;
  // Per-head stored width, NOT kv_storage_bytes(row elements): this is
  // exactly how KvCache/KvBlockPool size their rows, and packed fp4
  // rounds up per head (odd head_dim is rejected by the runtime).
  fp.row_bytes = uint64_t{model.num_layers} * model.num_heads * 2 *
                 numeric::kv_storage_bytes(model.head_dim(), storage);
  // Dense arena stays 1 byte/element regardless of storage (quantized
  // formats round-trip in place there; only the paged pool packs).
  fp.dense_bytes = uint64_t{model.num_layers} * model.num_heads * 2 *
                   model.head_dim() * model.seq_len;
  fp.blocks = util::ceil_div(rows, block_rows);
  fp.paged_bytes = uint64_t{fp.blocks} * block_rows * fp.row_bytes;
  fp.gather_bytes_per_step = fp.row_bytes * rows;
  fp.gather_scratch_bytes = uint64_t{2} * rows * model.head_dim();
  return fp;
}

ForkedKvFootprint estimate_forked_kv_footprint(const ref::ModelConfig& model,
                                               uint32_t prompt_rows,
                                               uint32_t new_rows,
                                               uint32_t beams,
                                               uint32_t block_rows,
                                               numeric::KvStorage storage) {
  if (prompt_rows == 0 || beams == 0 || block_rows == 0 ||
      prompt_rows + new_rows > model.seq_len) {
    throw std::invalid_argument("forked kv footprint: bad arguments");
  }
  ForkedKvFootprint fp;
  fp.row_bytes = uint64_t{model.num_layers} * model.num_heads * 2 *
                 numeric::kv_storage_bytes(model.head_dim(), storage);
  const uint64_t block_bytes = uint64_t{block_rows} * fp.row_bytes;
  const uint32_t full = util::ceil_div(prompt_rows + new_rows, block_rows);
  fp.shared_blocks = util::ceil_div(prompt_rows, block_rows);
  // A beam's private worst case: every block past the last fully-shared
  // one — its divergent tail plus the COW copy of the straddling block.
  fp.private_blocks = full - prompt_rows / block_rows;
  fp.cow_bytes =
      (uint64_t{fp.shared_blocks} + uint64_t{beams} * fp.private_blocks) *
      block_bytes;
  fp.eager_bytes = uint64_t{beams} * full * block_bytes;
  fp.bytes_saved = fp.eager_bytes - fp.cow_bytes;
  return fp;
}

PerfReport estimate_beam_generation_performance(const AccelConfig& config,
                                                const ref::ModelConfig& model,
                                                uint32_t prefill_len,
                                                uint32_t total_len,
                                                uint32_t memory_len,
                                                uint32_t beam_width) {
  // total_len may exceed seq_len by one: the last selected token is
  // scored from the final decoded state and never appended, so the
  // deepest modeled step position is total_len - 2 <= seq_len - 1.
  if (prefill_len == 0 || beam_width == 0 || prefill_len > total_len ||
      total_len > uint32_t{model.seq_len} + 1) {
    throw std::invalid_argument("beam generation perf: bad lengths");
  }
  const PerfReport prefill =
      estimate_decoder_performance(config, model, prefill_len, memory_len);

  PerfReport report;
  hw::Cycles step_cycles = 0;
  uint64_t step_macs = 0;
  for (uint32_t pos = prefill_len; pos + 1 < total_len; ++pos) {
    const PerfReport step =
        estimate_decode_step_performance(config, model, pos, memory_len);
    step_cycles += beam_width * step.total_cycles;
    step_macs += beam_width * step.macs;
  }
  report.stages.push_back(StageTiming{.name = "prefill",
                                      .invocations = 1,
                                      .compute = prefill.total_cycles,
                                      .total = prefill.total_cycles,
                                      .bytes_loaded = 0});
  const uint64_t beam_steps =
      uint64_t{beam_width} *
      (total_len > prefill_len ? total_len - prefill_len - 1 : 0);
  report.stages.push_back(StageTiming{.name = "beam_steps",
                                      .invocations = beam_steps,
                                      .compute = step_cycles,
                                      .total = step_cycles,
                                      .bytes_loaded = 0});
  report.total_cycles = prefill.total_cycles + step_cycles;
  report.layer_cycles = report.total_cycles / model.num_layers;
  report.macs = prefill.macs + step_macs;
  finalize_report(config, report);
  return report;
}

PerfReport estimate_prefill_performance(const AccelConfig& config,
                                        const ref::ModelConfig& model,
                                        uint32_t prefill_len,
                                        uint32_t memory_len,
                                        const GenerationCosting& costing) {
  config.validate();
  validate_runtime(config.synth, model);
  if (prefill_len == 0 || prefill_len > model.seq_len) {
    throw std::invalid_argument("prefill perf: bad prefill length");
  }
  if (memory_len == 0 || memory_len > config.synth.max_seq_len) {
    throw std::invalid_argument("prefill perf: bad memory length");
  }
  if (costing.adopted_rows >= prefill_len) {
    throw std::invalid_argument(
        "prefill perf: adopted_rows must leave a tail row");
  }

  const hw::SynthParams& sp = config.synth;
  const TimingConstants& tc = config.timing;
  const uint64_t s_len = memory_len;
  const uint64_t d = model.d_model;
  const uint64_t dk = d / model.num_heads;
  const uint64_t f = model.ffn_hidden();
  const hw::Cycles depth = tc.pipeline_depth;
  using util::ceil_div;

  PerfReport report;
  const uint64_t tiles_d = ceil_div(d, static_cast<uint64_t>(sp.ts_mha));
  const uint32_t ii_qkv = hw::achieved_ii(4 * sp.ts_mha);
  const uint32_t ii_proj = hw::achieved_ii(2 * sp.ts_mha);
  const uint32_t ii_dk = static_cast<uint32_t>(
      ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
  const FfnTiling ft = ffn_tiling(config, d, f);
  const hw::Cycles ln_row =
      3 * ceil_div(d, static_cast<uint64_t>(tc.ln_lanes)) +
      tc.ln_row_overhead;

  // Replay the executed pass schedule: rows [adopted_rows, prefill_len)
  // in chunk-sized passes, each pass's self-attention spanning every row
  // cached so far (pos + n keys, NOT prefill_len — chunking genuinely
  // changes the QK/SV totals, which is why the model must walk it).
  struct Acc {
    uint64_t inv = 0;
    hw::Cycles cyc = 0;
  };
  Acc self_qkv, self_qk, self_softmax, self_sv, cross_q, cross_qk,
      cross_softmax, cross_sv, self_proj, cross_proj, ffn_expand,
      ffn_contract, layernorm;
  uint64_t layer_macs = 0;  // per layer; scaled by num_layers below

  const uint64_t t_len = prefill_len;
  const uint64_t start = costing.adopted_rows;
  const uint64_t chunk =
      costing.prefill_chunk == 0 ? t_len - start : costing.prefill_chunk;
  for (uint64_t pos = start; pos < t_len; pos += chunk) {
    const uint64_t n = std::min(chunk, t_len - pos);
    const uint64_t kv = pos + n;
    self_qkv.inv += tiles_d;
    self_qkv.cyc += tiles_d * n * hw::pipelined_loop(dk, ii_qkv, depth);
    self_qk.inv += 1;
    self_qk.cyc += n * hw::pipelined_loop(kv, ii_dk, depth);
    self_softmax.inv += 1;
    self_softmax.cyc += n * (2 * kv + tc.softmax_row_overhead);
    {
      const uint32_t ii = static_cast<uint32_t>(
          ceil_div(kv, static_cast<uint64_t>(sp.sl_unroll)));
      self_sv.inv += 1;
      self_sv.cyc += n * hw::pipelined_loop(dk, ii, depth);
    }
    cross_q.inv += tiles_d;
    cross_q.cyc += tiles_d * n * hw::pipelined_loop(dk, ii_proj, depth);
    cross_qk.inv += 1;
    cross_qk.cyc += n * hw::pipelined_loop(s_len, ii_dk, depth);
    cross_softmax.inv += 1;
    cross_softmax.cyc += n * (2 * s_len + tc.softmax_row_overhead);
    {
      const uint32_t ii = static_cast<uint32_t>(
          ceil_div(s_len, static_cast<uint64_t>(sp.sl_unroll)));
      cross_sv.inv += 1;
      cross_sv.cyc += n * hw::pipelined_loop(dk, ii, depth);
    }
    const hw::Cycles per_access = n * ft.per_access;
    self_proj.inv += ft.rows_d * ft.cols_d;
    self_proj.cyc += ft.rows_d * ft.cols_d * per_access;
    cross_proj.inv += ft.rows_d * ft.cols_d;
    cross_proj.cyc += ft.rows_d * ft.cols_d * per_access;
    ffn_expand.inv += ft.rows_d * ft.cols_f;
    ffn_expand.cyc += ft.rows_d * ft.cols_f * per_access;
    ffn_contract.inv += ft.rows_f * ft.cols_d;
    ffn_contract.cyc += ft.rows_f * ft.cols_d * per_access;
    layernorm.inv += 3;
    layernorm.cyc += 3 * n * ln_row;

    layer_macs += 3 * n * d * d + 2 * n * kv * d + n * d * d;  // self
    layer_macs += n * d * d + 2 * n * s_len * d + n * d * d;   // cross
    layer_macs += 2 * n * d * f;                               // ffn
  }

  auto add_stage = [&report](const char* name, uint64_t invocations,
                             hw::Cycles cycles) {
    report.stages.push_back(StageTiming{
        .name = name, .invocations = invocations, .compute = cycles,
        .total = cycles, .bytes_loaded = 0});
  };
  add_stage("self_qkv", self_qkv.inv, self_qkv.cyc);
  add_stage("self_qk", self_qk.inv, self_qk.cyc);
  add_stage("self_softmax", self_softmax.inv, self_softmax.cyc);
  add_stage("self_sv", self_sv.inv, self_sv.cyc);
  add_stage("cross_q", cross_q.inv, cross_q.cyc);
  if (!costing.cross_cached) {
    // The one-time memory projection — the stage a cross-cache hit
    // removes wholesale.
    add_stage("cross_kv", tiles_d,
              2 * tiles_d * s_len * hw::pipelined_loop(dk, ii_proj, depth));
    layer_macs += 2 * s_len * d * d;
  }
  add_stage("cross_qk", cross_qk.inv, cross_qk.cyc);
  add_stage("cross_softmax", cross_softmax.inv, cross_softmax.cyc);
  add_stage("cross_sv", cross_sv.inv, cross_sv.cyc);
  add_stage("self_proj", self_proj.inv, self_proj.cyc);
  add_stage("cross_proj", cross_proj.inv, cross_proj.cyc);
  add_stage("ffn_expand", ffn_expand.inv, ffn_expand.cyc);
  add_stage("ffn_contract", ffn_contract.inv, ffn_contract.cyc);
  add_stage("layernorm", layernorm.inv, layernorm.cyc);

  for (const auto& stage : report.stages) {
    report.layer_cycles += stage.total;
  }
  report.total_cycles = report.layer_cycles * model.num_layers;
  report.macs = model.num_layers * layer_macs;
  finalize_report(config, report);
  return report;
}

PerfReport estimate_generation_performance(const AccelConfig& config,
                                           const ref::ModelConfig& model,
                                           uint32_t prefill_len,
                                           uint32_t total_len,
                                           uint32_t memory_len) {
  return estimate_generation_performance(config, model, prefill_len,
                                         total_len, memory_len,
                                         GenerationCosting{});
}

PerfReport estimate_generation_performance(const AccelConfig& config,
                                           const ref::ModelConfig& model,
                                           uint32_t prefill_len,
                                           uint32_t total_len,
                                           uint32_t memory_len,
                                           const GenerationCosting& costing) {
  if (prefill_len == 0 || prefill_len > total_len ||
      total_len > model.seq_len) {
    throw std::invalid_argument("generation perf: bad lengths");
  }
  const PerfReport prefill = estimate_prefill_performance(
      config, model, prefill_len, memory_len, costing);

  PerfReport report;
  hw::Cycles step_cycles = 0;
  uint64_t step_macs = 0;
  uint64_t step_bytes = 0;
  for (uint32_t pos = prefill_len; pos < total_len; ++pos) {
    const PerfReport step = estimate_decode_step_performance(
        config, model, pos, memory_len, false, costing.kv_storage);
    step_cycles += step.total_cycles;
    step_macs += step.macs;
    step_bytes += step.bytes_loaded;
  }
  report.stages.push_back(StageTiming{.name = "prefill",
                                      .invocations = 1,
                                      .compute = prefill.total_cycles,
                                      .total = prefill.total_cycles,
                                      .bytes_loaded = 0});
  report.stages.push_back(StageTiming{.name = "decode_steps",
                                      .invocations = total_len - prefill_len,
                                      .compute = step_cycles,
                                      .total = step_cycles,
                                      .bytes_loaded = step_bytes});
  report.bytes_loaded = step_bytes;
  report.total_cycles = prefill.total_cycles + step_cycles;
  report.layer_cycles = report.total_cycles / model.num_layers;
  report.macs = prefill.macs + step_macs;
  finalize_report(config, report);
  return report;
}

PrefixCacheSavings estimate_prefix_cache_savings(
    const AccelConfig& config, const ref::ModelConfig& model,
    uint32_t prefill_len, uint32_t memory_len,
    const GenerationCosting& costing) {
  GenerationCosting cold = costing;
  cold.adopted_rows = 0;
  cold.cross_cached = false;
  const PerfReport cold_r = estimate_prefill_performance(
      config, model, prefill_len, memory_len, cold);
  const PerfReport warm_r = estimate_prefill_performance(
      config, model, prefill_len, memory_len, costing);
  PrefixCacheSavings s;
  s.macs_saved = cold_r.macs - warm_r.macs;
  s.rows_skipped = costing.adopted_rows;
  // Adopted rows live in the shared pool, so they count at the stored
  // width (matching the runtime's prefix_bytes_saved, which multiplies
  // by the pool's storage-aware row_bytes). Cross projections below
  // stay 1 byte/element: the cross cache always stores int8 rows.
  const uint64_t row_bytes =
      uint64_t{model.num_layers} * model.num_heads * 2 *
      numeric::kv_storage_bytes(model.head_dim(), costing.kv_storage);
  s.kv_bytes = uint64_t{costing.adopted_rows} * row_bytes;
  s.cross_bytes = costing.cross_cached
                      ? uint64_t{model.num_layers} * model.num_heads * 2 *
                            memory_len * model.head_dim()
                      : 0;
  s.ms_saved = cold_r.latency_ms - warm_r.latency_ms;
  return s;
}

PreemptionCost estimate_preemption_cost(const AccelConfig& config,
                                        const ref::ModelConfig& model,
                                        uint32_t rows_cached,
                                        uint32_t memory_len,
                                        uint32_t block_rows,
                                        numeric::KvStorage storage) {
  if (rows_cached == 0 || rows_cached > model.seq_len || block_rows == 0) {
    throw std::invalid_argument("preemption cost: bad rows/block_rows");
  }
  PreemptionCost cost;
  // Swap moves the victim's whole block-table bytes twice: spill at
  // eviction, rescatter at restore. Partial tail blocks travel whole —
  // the same bytes KvCache::swap_out actually copies, at the pool's
  // stored width (quantized storage tilts victim selection toward swap
  // exactly as the executed spill shrinks).
  const KvFootprint fp =
      estimate_kv_footprint(model, rows_cached, block_rows, storage);
  cost.swap_bytes = 2 * fp.paged_bytes;
  const hw::HbmModel hbm;
  const uint32_t channels =
      std::min(config.synth.hbm_channels_used, hbm.config().channels);
  const double fmax = hw::fmax_mhz(config.synth);
  cost.swap_ms =
      hw::cycles_to_ms(hbm.load_cycles(cost.swap_bytes, channels), fmax);
  // Drop-and-recompute re-runs the cached rows through the stack. The
  // replay is chunked (prompt pass + fed-token pass) but every cycle
  // model here is row-wise, so one prefill-shaped estimate is exact.
  const PerfReport recompute =
      estimate_decoder_performance(config, model, rows_cached, memory_len);
  cost.recompute_macs = recompute.macs;
  cost.recompute_ms = recompute.latency_ms;
  cost.prefer_swap = cost.swap_ms < cost.recompute_ms;
  return cost;
}

}  // namespace protea::accel
