#include "accel/decoder_accelerator.hpp"

#include <stdexcept>

#include "hw/frequency_model.hpp"
#include "hw/resource_model.hpp"
#include "runtime/inference_session.hpp"
#include "util/math_util.hpp"

namespace protea::accel {

ProteaDecoderAccelerator::ProteaDecoderAccelerator(AccelConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void ProteaDecoderAccelerator::load_model(QuantizedDecoder model) {
  validate_runtime(config_.synth, model.config);
  model_ = std::move(model);
  stats_ = EngineStats{};
}

const QuantizedDecoder& ProteaDecoderAccelerator::model() const {
  if (!model_) {
    throw std::logic_error("ProteaDecoderAccelerator: no model loaded");
  }
  return *model_;
}

tensor::MatrixF ProteaDecoderAccelerator::forward(
    const tensor::MatrixF& target, const tensor::MatrixF& memory) {
  const QuantizedDecoder& qd = model();
  // Single decoder forward implementation shared with the serving runtime
  // (runtime/inference_session.hpp): masked self-attention,
  // cross-attention and FFN all sequence the unified layer-op blocks.
  tensor::MatrixF result;
  runtime::decoder_forward_into(qd, config_, target, memory, ws_, &stats_,
                                result);
  return result;
}

PerfReport ProteaDecoderAccelerator::performance(
    uint32_t target_len, uint32_t memory_len) const {
  return estimate_decoder_performance(config_, model().config, target_len,
                                      memory_len);
}

PerfReport estimate_decoder_performance(const AccelConfig& config,
                                        const ref::ModelConfig& model,
                                        uint32_t target_len,
                                        uint32_t memory_len) {
  config.validate();
  validate_runtime(config.synth, model);
  if (target_len == 0 || target_len > model.seq_len) {
    throw std::invalid_argument("decoder perf: bad target length");
  }
  if (memory_len == 0 || memory_len > config.synth.max_seq_len) {
    throw std::invalid_argument("decoder perf: bad memory length");
  }

  const hw::SynthParams& sp = config.synth;
  const TimingConstants& tc = config.timing;
  const uint64_t t_len = target_len;
  const uint64_t s_len = memory_len;
  const uint64_t d = model.d_model;
  const uint64_t dk = d / model.num_heads;
  const uint64_t f = model.ffn_hidden();
  const hw::Cycles depth = tc.pipeline_depth;
  using util::ceil_div;

  PerfReport report;
  const uint64_t tiles_d = ceil_div(d, static_cast<uint64_t>(sp.ts_mha));
  const uint32_t ii_qkv = hw::achieved_ii(4 * sp.ts_mha);
  const uint32_t ii_proj = hw::achieved_ii(2 * sp.ts_mha);

  auto add_stage = [&report](const char* name, uint64_t invocations,
                             hw::Cycles cycles) {
    report.stages.push_back(StageTiming{
        .name = name, .invocations = invocations, .compute = cycles,
        .total = cycles, .bytes_loaded = 0});
  };

  // Self-attention (engines in parallel across heads).
  add_stage("self_qkv", tiles_d,
            tiles_d * t_len * hw::pipelined_loop(dk, ii_qkv, depth));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
    add_stage("self_qk", 1, t_len * hw::pipelined_loop(t_len, ii, depth));
  }
  add_stage("self_softmax", 1,
            t_len * (2 * t_len + tc.softmax_row_overhead));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(t_len, static_cast<uint64_t>(sp.sl_unroll)));
    add_stage("self_sv", 1, t_len * hw::pipelined_loop(dk, ii, depth));
  }

  // Cross-attention: Q from the target stream, K/V streamed over the
  // encoder memory — single-projection passes at half the QKV engine's
  // read parallelism.
  add_stage("cross_q", tiles_d,
            tiles_d * t_len * hw::pipelined_loop(dk, ii_proj, depth));
  add_stage("cross_kv", tiles_d,
            2 * tiles_d * s_len * hw::pipelined_loop(dk, ii_proj, depth));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(dk, static_cast<uint64_t>(sp.head_dim_max())));
    add_stage("cross_qk", 1, t_len * hw::pipelined_loop(s_len, ii, depth));
  }
  add_stage("cross_softmax", 1,
            t_len * (2 * s_len + tc.softmax_row_overhead));
  {
    const uint32_t ii = static_cast<uint32_t>(
        ceil_div(s_len, static_cast<uint64_t>(sp.sl_unroll)));
    add_stage("cross_sv", 1, t_len * hw::pipelined_loop(dk, ii, depth));
  }

  // Projections + FFN on the FFN engines (same tiling rules as encoder).
  const bool fixed_rows = config.padding == PaddingPolicy::kSynthFixedRows;
  const uint64_t ts_ffn = sp.ts_ffn;
  const uint64_t rows_d =
      fixed_rows ? sp.tiles_ffn_max() : ceil_div(d, ts_ffn);
  const uint64_t rows_f =
      fixed_rows ? 4ull * sp.tiles_ffn_max() : ceil_div(f, ts_ffn);
  const uint64_t cols_d = ceil_div(d, ts_ffn);
  const uint64_t cols_f = ceil_div(f, ts_ffn);
  const hw::Cycles per_access =
      t_len * hw::pipelined_loop(ts_ffn, hw::achieved_ii(2 * sp.ts_ffn),
                                 depth);
  add_stage("self_proj", rows_d * cols_d, rows_d * cols_d * per_access);
  add_stage("cross_proj", rows_d * cols_d, rows_d * cols_d * per_access);
  add_stage("ffn_expand", rows_d * cols_f, rows_d * cols_f * per_access);
  add_stage("ffn_contract", rows_f * cols_d, rows_f * cols_d * per_access);

  const hw::Cycles ln_row =
      3 * ceil_div(d, static_cast<uint64_t>(tc.ln_lanes)) +
      tc.ln_row_overhead;
  add_stage("layernorm", 3, 3 * t_len * ln_row);

  for (const auto& stage : report.stages) {
    report.layer_cycles += stage.total;
  }
  report.total_cycles = report.layer_cycles * model.num_layers;
  report.fmax_mhz = hw::fmax_mhz(sp);
  report.latency_ms = hw::cycles_to_ms(report.total_cycles, report.fmax_mhz);

  // Operation counts for a decoder stack.
  const uint64_t self_macs =
      3 * t_len * d * d + 2 * t_len * t_len * d + t_len * d * d;
  const uint64_t cross_macs = t_len * d * d + 2 * s_len * d * d +
                              2 * t_len * s_len * d + t_len * d * d;
  const uint64_t ffn_macs = 2 * t_len * d * f;
  report.macs = model.num_layers * (self_macs + cross_macs + ffn_macs);
  report.ops = 2 * report.macs;
  report.gops =
      static_cast<double>(report.ops) / (report.latency_ms * 1e-3) / 1e9;

  const auto resources = hw::estimate_resources(sp);
  report.dsp_utilization =
      static_cast<double>(report.macs) /
      (static_cast<double>(resources.total_pes) *
       static_cast<double>(report.total_cycles));
  return report;
}

}  // namespace protea::accel
