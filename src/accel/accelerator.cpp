#include "accel/accelerator.hpp"

#include <stdexcept>

#include "runtime/inference_session.hpp"

namespace protea::accel {

ProteaAccelerator::ProteaAccelerator(AccelConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void ProteaAccelerator::load_model(QuantizedModel model) {
  validate_runtime(config_.synth, model.config);
  program_ = model.config;
  model_ = std::move(model);
  stats_ = EngineStats{};
}

const QuantizedModel& ProteaAccelerator::model() const {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  return *model_;
}

void ProteaAccelerator::program_layers(uint32_t num_layers) {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  if (num_layers == 0 || num_layers > model_->config.num_layers) {
    throw std::invalid_argument(
        "program_layers: layer count outside the loaded model");
  }
  program_.num_layers = num_layers;
}

void ProteaAccelerator::program_seq_len(uint32_t seq_len) {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  if (seq_len == 0 || seq_len > config_.synth.max_seq_len) {
    throw std::invalid_argument("program_seq_len: outside synthesized max");
  }
  program_.seq_len = seq_len;
}

const ref::ModelConfig& ProteaAccelerator::programmed_config() const {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  return program_;
}

tensor::MatrixF ProteaAccelerator::forward(
    const tensor::MatrixF& input, std::vector<AccelLayerTrace>* traces) {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  // Single forward implementation shared with the serving runtime
  // (runtime/inference_session.hpp); the member arena makes repeated
  // forwards of one programmed shape allocation-free after warmup.
  tensor::MatrixF result;
  runtime::encoder_forward_into(*model_, program_, config_, input, ws_,
                                &stats_, result, traces);
  return result;
}

PerfReport ProteaAccelerator::performance() const {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  return estimate_performance(config_, program_);
}

}  // namespace protea::accel
