#include "accel/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/quantizer.hpp"

namespace protea::accel {

ProteaAccelerator::ProteaAccelerator(AccelConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void ProteaAccelerator::load_model(QuantizedModel model) {
  validate_runtime(config_.synth, model.config);
  program_ = model.config;
  model_ = std::move(model);
  stats_ = EngineStats{};
}

const QuantizedModel& ProteaAccelerator::model() const {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  return *model_;
}

void ProteaAccelerator::program_layers(uint32_t num_layers) {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  if (num_layers == 0 || num_layers > model_->config.num_layers) {
    throw std::invalid_argument(
        "program_layers: layer count outside the loaded model");
  }
  program_.num_layers = num_layers;
}

void ProteaAccelerator::program_seq_len(uint32_t seq_len) {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  if (seq_len == 0 || seq_len > config_.synth.max_seq_len) {
    throw std::invalid_argument("program_seq_len: outside synthesized max");
  }
  program_.seq_len = seq_len;
}

const ref::ModelConfig& ProteaAccelerator::programmed_config() const {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  return program_;
}

tensor::MatrixF ProteaAccelerator::forward(
    const tensor::MatrixF& input, std::vector<AccelLayerTrace>* traces) {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  const QuantizedModel& qm = *model_;
  if (input.rows() != program_.seq_len ||
      input.cols() != program_.d_model) {
    throw std::invalid_argument("forward: input shape mismatch");
  }
  if (traces != nullptr) {
    traces->clear();
    traces->resize(program_.num_layers);
  }

  // Quantize the input embedding at the first layer's input scale.
  numeric::Quantizer quant(8, /*pow2_scale=*/true);
  quant.set_scale(qm.layers.front().scales.x);
  tensor::MatrixI8 x(input.rows(), input.cols());
  quant.quantize(input.flat(), x.flat());

  double out_scale = qm.layers.front().scales.x;
  for (uint32_t li = 0; li < program_.num_layers; ++li) {
    const QLayer& layer = qm.layers[li];
    // Between layers the calibrated scales line up (ln2 of layer l is the
    // input of layer l+1); realign with an exact shift when they differ.
    if (li > 0 && layer.scales.x != out_scale) {
      const double ratio = out_scale / layer.scales.x;
      for (int8_t& q : x.flat()) {
        const auto rescaled = static_cast<int32_t>(
            std::llround(static_cast<double>(q) * ratio));
        q = static_cast<int8_t>(std::clamp(rescaled, -128, 127));
      }
    }

    std::vector<AttentionModule::HeadTrace>* head_traces =
        traces != nullptr ? &(*traces)[li].heads : nullptr;
    tensor::MatrixI8 concat = AttentionModule::run(
        layer, x, config_.synth.ts_mha, &stats_, head_traces);

    FfnModule::Trace* ffn_trace =
        traces != nullptr ? &(*traces)[li].ffn : nullptr;
    tensor::MatrixI8 out =
        FfnModule::run(layer, concat, x, config_.synth.ts_ffn,
                       program_.activation, &stats_, ffn_trace);

    if (traces != nullptr) {
      (*traces)[li].concat = std::move(concat);
      (*traces)[li].out = out;
    }
    x = std::move(out);
    out_scale = layer.scales.ln2;
  }

  tensor::MatrixF result(x.rows(), x.cols());
  quant.set_scale(out_scale);
  quant.dequantize(x.flat(), result.flat());
  return result;
}

PerfReport ProteaAccelerator::performance() const {
  if (!model_) throw std::logic_error("ProteaAccelerator: no model loaded");
  return estimate_performance(config_, program_);
}

}  // namespace protea::accel
