#include "accel/timeline.hpp"

#include <fstream>
#include <map>
#include <stdexcept>

namespace protea::accel {

void Timeline::add(TimelineEvent event) {
  if (event.end < event.start) {
    throw std::invalid_argument("Timeline: event ends before it starts");
  }
  total_ = std::max(total_, event.end);
  events_.push_back(std::move(event));
}

hw::Cycles Timeline::stage_busy(const std::string& stage) const {
  hw::Cycles busy = 0;
  for (const auto& e : events_) {
    if (e.stage == stage) busy += e.duration();
  }
  return busy;
}

void Timeline::export_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Timeline: cannot open " + path);
  }
  // Stable small integer ids per stage name -> trace "tid".
  std::map<std::string, int> tids;
  for (const auto& e : events_) {
    tids.emplace(e.stage, static_cast<int>(tids.size()) + 1);
  }
  const double us_per_cycle = fmax_mhz_ > 0.0 ? 1.0 / fmax_mhz_ : 1.0;

  out << "[\n";
  bool first = true;
  for (const auto& [stage, tid] : tids) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tid
        << R"(,"args":{"name":")" << stage << R"("}})";
  }
  for (const auto& e : events_) {
    out << ",\n";
    out << R"({"name":")" << e.stage << " L" << e.layer
        << R"(","cat":"engine","ph":"X","pid":1,"tid":)"
        << tids.at(e.stage) << R"(,"ts":)"
        << static_cast<double>(e.start) * us_per_cycle << R"(,"dur":)"
        << static_cast<double>(e.duration()) * us_per_cycle
        << R"(,"args":{"layer":)" << e.layer << R"(,"cycles":)"
        << e.duration() << "}}";
  }
  out << "\n]\n";
  if (!out) throw std::runtime_error("Timeline: write failure");
}

Timeline build_timeline(const AccelConfig& config,
                        const ref::ModelConfig& model) {
  const PerfReport report = estimate_performance(config, model);
  Timeline timeline;
  timeline.fmax_mhz_ = report.fmax_mhz;

  hw::Cycles now = 0;
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    for (const auto& stage : report.stages) {
      // "layernorm" aggregates both LN units; split it around the FFN
      // chain for a faithful schedule: half after ffn1, half after ffn3.
      if (stage.name == "layernorm") continue;
      TimelineEvent event;
      event.stage = stage.name;
      event.layer = layer;
      event.start = now;
      event.end = now + stage.total;
      now = event.end;
      timeline.add(std::move(event));
      if (stage.name == "ffn1" || stage.name == "ffn3") {
        const auto& ln = report.stage("layernorm");
        TimelineEvent ln_event;
        ln_event.stage = "layernorm";
        ln_event.layer = layer;
        ln_event.start = now;
        ln_event.end = now + ln.total / 2;
        now = ln_event.end;
        timeline.add(std::move(ln_event));
      }
    }
  }
  return timeline;
}

}  // namespace protea::accel
