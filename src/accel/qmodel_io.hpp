// Serialization of prepared (quantized + calibrated) accelerator models.
//
// Deployment story: calibration needs the float checkpoint and
// representative inputs, but the device host only needs the int8 tensors,
// bias words and requantization constants. This format is that deployable
// artifact — the paper's host software would stream exactly these bytes
// into HBM and the CSR-programmed constants.
//
// Layout (little-endian): magic "PTQ1" | config | per-layer blobs.
#pragma once

#include <string>

#include "accel/quantized_model.hpp"

namespace protea::accel {

/// Writes a prepared model; throws std::runtime_error on I/O failure.
void save_quantized_model(const QuantizedModel& model,
                          const std::string& path);

/// Reads a model written by save_quantized_model; validates the header
/// and every tensor shape against the stored config.
QuantizedModel load_quantized_model(const std::string& path);

}  // namespace protea::accel
