// Residual-add + LayerNorm unit.
//
// ProTEA places an LN module after FFN1 (the attention output projection)
// and after FFN3 (§IV-B), each fused with the residual connection. The
// unit aligns the two int8 operands (their power-of-two scales differ) in
// a 32-bit domain with exact shifts, computes integer mean and variance,
// and normalizes with gamma/beta. The reciprocal square root is the one
// sub-operation evaluated in double precision — the FPGA uses a small
// LUT + Newton-Raphson core whose error is far below the int8
// quantization step, so this does not affect verification tolerances.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace protea::accel {

/// Allocation-free residual-add + LayerNorm core used by the runtime hot
/// path: gamma/beta are borrowed spans (the quantized model's buffers),
/// `out` a preallocated view and `scratch` >= x.cols() int32 lanes (the
/// aligned-residual row buffer, normally arena-backed).
void run_layernorm(std::span<const float> gamma, std::span<const float> beta,
                   float eps, tensor::ConstMatrixViewI8 x, double s_x,
                   tensor::ConstMatrixViewI8 r, double s_r, double s_out,
                   tensor::MatrixViewI8 out, std::span<int32_t> scratch);

class LayerNormUnit {
 public:
  /// gamma/beta have the normalized width; eps as in the float reference.
  LayerNormUnit(std::span<const float> gamma, std::span<const float> beta,
                float eps = 1e-5f);

  /// out = LN(x * s_x + r * s_r) quantized at `s_out`.
  /// Shapes must match; output is (rows x cols) int8.
  tensor::MatrixI8 run(const tensor::MatrixI8& x, double s_x,
                       const tensor::MatrixI8& r, double s_r,
                       double s_out) const;

 private:
  std::vector<float> gamma_;
  std::vector<float> beta_;
  float eps_;
};

}  // namespace protea::accel
