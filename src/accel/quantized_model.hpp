// Quantized weight layout as the accelerator consumes it.
//
// The host flow (paper §IV-D: extract parameters from the trained model,
// generate instructions) becomes: quantize float weights into the
// per-head, per-engine int8 layout, pre-scale biases into accumulator
// units, and pre-compute the requantization multipliers each engine
// applies on write-back.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/quant_calib.hpp"
#include "numeric/requantize.hpp"
#include "ref/weights.hpp"
#include "tensor/matrix.hpp"

namespace protea::accel {

/// Per-head projection weights, stored transposed — (d_k x d_model) — so
/// the QKV engine indexes wq[k][j] exactly as Algorithm 1 does.
struct QHeadWeights {
  tensor::MatrixI8 wqt, wkt, wvt;      // (d_k x d_model)
  std::vector<int32_t> bq, bk, bv;     // accumulator-scale biases (d_k)
};

struct QLayer {
  std::vector<QHeadWeights> heads;
  tensor::MatrixI8 wo;                 // (d_model x d_model), [in][out]
  std::vector<int32_t> bo;
  tensor::MatrixI8 w1;                 // (d_model x ffn_hidden)
  std::vector<int32_t> b1;
  tensor::MatrixI8 w2;                 // (ffn_hidden x d_model)
  std::vector<int32_t> b2;
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;

  LayerScales scales;
  double s_wq = 1.0, s_wk = 1.0, s_wv = 1.0;  // weight scales
  double s_wo = 1.0, s_w1 = 1.0, s_w2 = 1.0;

  // Write-back requantization for every engine output.
  numeric::RequantParams rq_q, rq_k, rq_v;   // QKV accumulators -> int8
  numeric::RequantParams rq_logit;           // Q.K^T (incl. 1/sqrt(dk))
  numeric::RequantParams rq_sv;              // S.V -> int8
  numeric::RequantParams rq_proj;            // FFN1 (projection) -> int8
  numeric::RequantParams rq_hidden;          // FFN2 pre-activation -> int8
  numeric::RequantParams rq_ffn_out;         // FFN3 -> int8
};

struct QuantizedModel {
  ref::ModelConfig config;
  std::vector<QLayer> layers;

  /// Total int8 weight bytes the accelerator streams from HBM per forward
  /// pass (what the tiling exists to manage).
  uint64_t weight_bytes() const;
};

/// Quantizes a float model with pre-computed activation scales.
QuantizedModel quantize_model(const ref::EncoderWeights& weights,
                              const std::vector<LayerScales>& scales);

/// Convenience: calibrate on `calib_input` then quantize.
QuantizedModel prepare_model(const ref::EncoderWeights& weights,
                             const tensor::MatrixF& calib_input);

}  // namespace protea::accel
