#include "accel/quantized_model.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/quantizer.hpp"

namespace protea::accel {
namespace {

using numeric::Quantizer;

/// Quantizes a float matrix to int8 with a freshly calibrated pow2 scale;
/// returns the scale.
double quantize_matrix(const tensor::MatrixF& src, tensor::MatrixI8& dst) {
  Quantizer q(8, /*pow2_scale=*/true);
  const double scale = q.calibrate(src.flat());
  dst = tensor::MatrixI8(src.rows(), src.cols());
  q.quantize(src.flat(), dst.flat());
  return scale;
}

/// Quantizes a transposed column-slice of `src`: rows [c0, c0+n) of the
/// result are columns c0..c0+n of src. Used for per-head W^T layout.
double quantize_transposed_slice(const tensor::MatrixF& src, size_t col0,
                                 size_t ncols, tensor::MatrixI8& dst) {
  tensor::MatrixF t(ncols, src.rows());
  for (size_t r = 0; r < src.rows(); ++r) {
    for (size_t c = 0; c < ncols; ++c) t(c, r) = src(r, col0 + c);
  }
  return quantize_matrix(t, dst);
}

/// Biases are added in the accumulator domain: b_acc = round(b / s_acc).
std::vector<int32_t> scale_bias(std::span<const float> bias, double s_acc,
                                size_t offset, size_t count) {
  std::vector<int32_t> out(count);
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<int32_t>(
        std::llround(static_cast<double>(bias[offset + i]) / s_acc));
  }
  return out;
}

}  // namespace

uint64_t QuantizedModel::weight_bytes() const {
  uint64_t bytes = 0;
  for (const auto& l : layers) {
    for (const auto& h : l.heads) {
      bytes += h.wqt.size() + h.wkt.size() + h.wvt.size();
    }
    bytes += l.wo.size() + l.w1.size() + l.w2.size();
  }
  return bytes;
}

QuantizedModel quantize_model(const ref::EncoderWeights& weights,
                              const std::vector<LayerScales>& scales) {
  const ref::ModelConfig& cfg = weights.config;
  cfg.validate();
  if (scales.size() != weights.layers.size()) {
    throw std::invalid_argument("quantize_model: scales/layers mismatch");
  }

  const size_t dk = cfg.head_dim();
  const double attn_scale_factor =
      cfg.attn_scale == ref::AttnScale::kInvSqrtDk
          ? 1.0 / std::sqrt(static_cast<double>(dk))
          : 1.0 / static_cast<double>(cfg.d_model);

  QuantizedModel qm;
  qm.config = cfg;
  qm.layers.resize(weights.layers.size());

  for (size_t li = 0; li < weights.layers.size(); ++li) {
    const auto& src = weights.layers[li];
    QLayer& dst = qm.layers[li];
    dst.scales = scales[li];
    const LayerScales& s = dst.scales;

    // Per-head transposed projection slices. All heads share one weight
    // scale per tensor (the hardware has a single requant constant per
    // engine output).
    dst.heads.resize(cfg.num_heads);
    double swq = 0.0, swk = 0.0, swv = 0.0;
    for (size_t h = 0; h < cfg.num_heads; ++h) {
      auto& head = dst.heads[h];
      swq = std::max(swq, quantize_transposed_slice(src.wq, h * dk, dk,
                                                    head.wqt));
      swk = std::max(swk, quantize_transposed_slice(src.wk, h * dk, dk,
                                                    head.wkt));
      swv = std::max(swv, quantize_transposed_slice(src.wv, h * dk, dk,
                                                    head.wvt));
    }
    // Re-quantize every head with the shared (max) scale for consistency.
    for (size_t h = 0; h < cfg.num_heads; ++h) {
      auto& head = dst.heads[h];
      Quantizer q(8, true);
      q.set_scale(swq);
      tensor::MatrixF tmp(dk, cfg.d_model);
      for (size_t r = 0; r < cfg.d_model; ++r) {
        for (size_t c = 0; c < dk; ++c) tmp(c, r) = src.wq(r, h * dk + c);
      }
      q.quantize(tmp.flat(), head.wqt.flat());
      q.set_scale(swk);
      for (size_t r = 0; r < cfg.d_model; ++r) {
        for (size_t c = 0; c < dk; ++c) tmp(c, r) = src.wk(r, h * dk + c);
      }
      q.quantize(tmp.flat(), head.wkt.flat());
      q.set_scale(swv);
      for (size_t r = 0; r < cfg.d_model; ++r) {
        for (size_t c = 0; c < dk; ++c) tmp(c, r) = src.wv(r, h * dk + c);
      }
      q.quantize(tmp.flat(), head.wvt.flat());

      head.bq = scale_bias(src.bq, s.x * swq, h * dk, dk);
      head.bk = scale_bias(src.bk, s.x * swk, h * dk, dk);
      head.bv = scale_bias(src.bv, s.x * swv, h * dk, dk);
    }
    dst.s_wq = swq;
    dst.s_wk = swk;
    dst.s_wv = swv;

    dst.s_wo = quantize_matrix(src.wo, dst.wo);
    dst.s_w1 = quantize_matrix(src.w1, dst.w1);
    dst.s_w2 = quantize_matrix(src.w2, dst.w2);
    dst.bo = scale_bias(src.bo, s.sv * dst.s_wo, 0, src.bo.size());
    dst.b1 = scale_bias(src.b1, s.ln1 * dst.s_w1, 0, src.b1.size());
    dst.b2 = scale_bias(src.b2, s.hidden * dst.s_w2, 0, src.b2.size());

    dst.ln1_gamma = src.ln1_gamma;
    dst.ln1_beta = src.ln1_beta;
    dst.ln2_gamma = src.ln2_gamma;
    dst.ln2_beta = src.ln2_beta;

    // Requant ratios: accumulator scale / output scale.
    using numeric::make_requant_params;
    dst.rq_q = make_requant_params(s.x * swq / s.q);
    dst.rq_k = make_requant_params(s.x * swk / s.k);
    dst.rq_v = make_requant_params(s.x * swv / s.v);
    dst.rq_logit =
        make_requant_params(s.q * s.k * attn_scale_factor / s.logit);
    dst.rq_sv = make_requant_params(s.attn_w * s.v / s.sv);
    dst.rq_proj = make_requant_params(s.sv * dst.s_wo / s.proj);
    dst.rq_hidden = make_requant_params(s.ln1 * dst.s_w1 / s.hidden);
    dst.rq_ffn_out = make_requant_params(s.hidden * dst.s_w2 / s.ffn_out);
  }
  return qm;
}

QuantizedModel prepare_model(const ref::EncoderWeights& weights,
                             const tensor::MatrixF& calib_input) {
  ref::Encoder encoder(weights);
  const auto scales = calibrate_scales(encoder, calib_input);
  return quantize_model(weights, scales);
}

}  // namespace protea::accel
