#include "accel/softmax_unit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protea::accel {

SoftmaxUnit::SoftmaxUnit(double logit_scale) : logit_scale_(logit_scale) {
  if (!(logit_scale > 0.0)) {
    throw std::invalid_argument("SoftmaxUnit: scale must be positive");
  }
  for (size_t delta = 0; delta < exp_table_.size(); ++delta) {
    const double value =
        std::exp(-static_cast<double>(delta) * logit_scale) * 65536.0;
    exp_table_[delta] = static_cast<uint32_t>(std::llround(value));
  }
}

void SoftmaxUnit::run_into(tensor::ConstMatrixViewI8 logits,
                           tensor::MatrixViewI8 out) const {
  if (out.rows() != logits.rows() || out.cols() != logits.cols()) {
    throw std::invalid_argument("SoftmaxUnit: output shape mismatch");
  }
  for (size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    // Pass 1: row maximum.
    int32_t q_max = -128;
    for (int8_t q : row) q_max = std::max<int32_t>(q_max, q);
    // Pass 2: table lookups + integer sum. The sum of SL entries of up to
    // 2^16 fits uint64 for any supported sequence length.
    uint64_t sum = 0;
    for (int8_t q : row) {
      sum += exp_table_[static_cast<size_t>(q_max - int32_t{q})];
    }
    // Pass 3: normalize. sum >= 65536 because the max element contributes
    // exp(0) = 2^16, so the division is well defined.
    auto out_row = out.row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      const uint64_t e =
          exp_table_[static_cast<size_t>(q_max - int32_t{row[c]})];
      const uint64_t w = (e * 127u + sum / 2) / sum;  // round-to-nearest
      out_row[c] = static_cast<int8_t>(std::min<uint64_t>(w, 127));
    }
  }
}

void SoftmaxUnit::run_causal_into(tensor::ConstMatrixViewI8 logits,
                                  tensor::MatrixViewI8 out,
                                  size_t row_offset) const {
  if (out.rows() != logits.rows() || out.cols() != logits.cols()) {
    throw std::invalid_argument("SoftmaxUnit: output shape mismatch");
  }
  out.fill(0);
  for (size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    const size_t valid = std::min(row_offset + r + 1, row.size());
    int32_t q_max = -128;
    for (size_t c = 0; c < valid; ++c) {
      q_max = std::max<int32_t>(q_max, row[c]);
    }
    uint64_t sum = 0;
    for (size_t c = 0; c < valid; ++c) {
      sum += exp_table_[static_cast<size_t>(q_max - int32_t{row[c]})];
    }
    auto out_row = out.row(r);
    for (size_t c = 0; c < valid; ++c) {
      const uint64_t e =
          exp_table_[static_cast<size_t>(q_max - int32_t{row[c]})];
      const uint64_t w = (e * 127u + sum / 2) / sum;
      out_row[c] = static_cast<int8_t>(std::min<uint64_t>(w, 127));
    }
  }
}

void SoftmaxUnit::run_causal_fused_into(tensor::ConstMatrixViewI32 acc,
                                        const numeric::RequantParams& rq,
                                        tensor::MatrixViewI8 out,
                                        size_t row_offset) const {
  if (out.rows() != acc.rows() || out.cols() != acc.cols()) {
    throw std::invalid_argument("SoftmaxUnit: output shape mismatch");
  }
  out.fill(0);
  for (size_t r = 0; r < acc.rows(); ++r) {
    const auto row = acc.row(r);
    const size_t valid = std::min(row_offset + r + 1, row.size());
    auto out_row = out.row(r);
    // Requantize each live lane exactly once, staged in the output row —
    // the emit pass below overwrites the staged logits with the weights
    // (lane c's weight only reads lane c's logit, so in place is safe).
    for (size_t c = 0; c < valid; ++c) {
      out_row[c] = static_cast<int8_t>(
          numeric::requantize(int64_t{row[c]}, rq, -128, 127));
    }
    int32_t q_max = -128;
    for (size_t c = 0; c < valid; ++c) {
      q_max = std::max<int32_t>(q_max, out_row[c]);
    }
    uint64_t sum = 0;
    for (size_t c = 0; c < valid; ++c) {
      sum += exp_table_[static_cast<size_t>(q_max - int32_t{out_row[c]})];
    }
    for (size_t c = 0; c < valid; ++c) {
      const uint64_t e =
          exp_table_[static_cast<size_t>(q_max - int32_t{out_row[c]})];
      const uint64_t w = (e * 127u + sum / 2) / sum;
      out_row[c] = static_cast<int8_t>(std::min<uint64_t>(w, 127));
    }
  }
}

tensor::MatrixI8 SoftmaxUnit::run(const tensor::MatrixI8& logits) const {
  tensor::MatrixI8 out(logits.rows(), logits.cols());
  run_into(logits, out);
  return out;
}

tensor::MatrixI8 SoftmaxUnit::run_causal(
    const tensor::MatrixI8& logits) const {
  tensor::MatrixI8 out(logits.rows(), logits.cols());
  run_causal_into(logits, out);
  return out;
}

}  // namespace protea::accel
