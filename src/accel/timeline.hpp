// Execution timeline: turns the cycle model's per-stage timings into an
// event schedule (which engine is busy when, per layer) and exports it in
// the Chrome trace-event JSON format (chrome://tracing / Perfetto) —
// the software equivalent of watching the RTL waveform viewer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/accel_config.hpp"
#include "accel/perf_model.hpp"
#include "hw/clock.hpp"

namespace protea::accel {

struct TimelineEvent {
  std::string stage;     // engine / unit name ("qkv", "ffn2", ...)
  uint32_t layer = 0;    // encoder layer index
  hw::Cycles start = 0;  // cycle the stage begins
  hw::Cycles end = 0;    // cycle the stage completes

  hw::Cycles duration() const { return end - start; }
};

class Timeline {
 public:
  const std::vector<TimelineEvent>& events() const { return events_; }
  hw::Cycles total_cycles() const { return total_; }
  double fmax_mhz() const { return fmax_mhz_; }

  void add(TimelineEvent event);

  /// Busy cycles of one stage name across all layers.
  hw::Cycles stage_busy(const std::string& stage) const;

  /// Writes Chrome trace-event JSON; one "thread" per stage name, time
  /// unit = microseconds at the modeled clock. Throws on I/O failure.
  void export_chrome_trace(const std::string& path) const;

 private:
  friend Timeline build_timeline(const AccelConfig&,
                                 const ref::ModelConfig&);
  std::vector<TimelineEvent> events_;
  hw::Cycles total_ = 0;
  double fmax_mhz_ = 0.0;
};

/// Sequences the perf model's stages into a serial per-layer schedule
/// (MHA pipeline, then the FFN chain, LN after each block) — the order
/// the paper's controller executes.
Timeline build_timeline(const AccelConfig& config,
                        const ref::ModelConfig& model);

}  // namespace protea::accel
