// Measured CPU baseline (the "general-purpose platform" side of the
// paper's Table III).
//
// A float32 transformer encoder with thread-parallel, cache-blocked GEMMs
// running on the host CPU. The paper compares ProTEA against Intel i5
// CPUs; this is our live-measured equivalent, so cross-platform speed-up
// ratios can be regenerated on any machine.
#pragma once

#include <cstddef>

#include "ref/weights.hpp"
#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace protea::baseline {

struct CpuMeasurement {
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  int repetitions = 0;
};

class CpuEncoder {
 public:
  /// `num_threads` = 0 uses all hardware threads.
  explicit CpuEncoder(ref::EncoderWeights weights, size_t num_threads = 0);

  const ref::ModelConfig& config() const { return weights_.config; }

  /// Full forward pass (float32, threaded).
  tensor::MatrixF forward(const tensor::MatrixF& input);

  /// Wall-clock latency over `reps` runs after `warmup` runs.
  CpuMeasurement measure(const tensor::MatrixF& input, int reps = 5,
                         int warmup = 1);

 private:
  tensor::MatrixF forward_layer(const tensor::MatrixF& x,
                                const ref::EncoderLayerWeights& layer);
  /// C = A * B (+ bias), rows of C distributed over the pool.
  tensor::MatrixF par_matmul(const tensor::MatrixF& a,
                             const tensor::MatrixF& b,
                             std::span<const float> bias);

  ref::EncoderWeights weights_;
  util::ThreadPool pool_;
};

}  // namespace protea::baseline
