// Published-results database: the competitor numbers of the paper's
// Tables II and III, recorded as data with their provenance.
//
// These are *reported* values from the cited works (and the paper's own
// measurements of CPUs/GPUs) — we cannot re-measure an ASIC tape-out or a
// Titan XP here, so the benchmark harness quotes them and regenerates
// only the ProTEA side with the simulator, exactly as the substitution
// plan in DESIGN.md describes.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace protea::baseline {

/// One comparison row of Table II (FPGA accelerators).
struct FpgaAccelResult {
  std::string citation;        // e.g. "[21] Peng et al., ISQED'21"
  std::string precision;       // as reported
  std::string fpga;            // board
  uint32_t dsp = 0;            // DSPs used
  double latency_ms = 0.0;     // reported latency
  double gops = 0.0;           // reported throughput
  double gops_per_dsp_x1000 = 0.0;
  std::string method;          // HLS / HDL
  double sparsity = 0.0;       // fraction of weights pruned (0 = dense)
  std::string model_zoo_name;  // our workload stand-in for this row
  double paper_protea_latency_ms = 0.0;  // ProTEA latency the paper reports
  double paper_protea_gops = 0.0;        // ProTEA GOPS the paper reports
};

/// One platform row of Table III (cross-platform comparison).
struct CrossPlatformResult {
  std::string model_id;        // "#1".."#4"
  std::string citation;        // workload source
  std::string platform;        // CPU/GPU name
  double frequency_ghz = 0.0;
  double latency_ms = 0.0;     // reported latency
  bool is_base = false;        // the row speedups are normalized against
  std::string model_zoo_name;  // our workload stand-in
  double paper_protea_latency_ms = 0.0;
  double paper_speedup = 0.0;  // ProTEA speed-up the paper reports
};

/// Table II rows ([21], [23], [25], [28], [29]).
const std::vector<FpgaAccelResult>& table2_results();

/// Table III rows (CPUs/GPUs for models #1..#4).
const std::vector<CrossPlatformResult>& table3_results();

/// The paper's own headline resources for ProTEA (Table II ProTEA rows).
struct ProteaPublished {
  uint32_t dsp = 3612;
  std::string precision = "Fix8";
  std::string fpga = "Alveo U55C";
  std::string method = "HLS";
};
ProteaPublished protea_published();

}  // namespace protea::baseline
