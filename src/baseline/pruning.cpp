#include "baseline/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/math_util.hpp"

namespace protea::baseline {
namespace {

void check_sparsity(double sparsity) {
  if (!(sparsity >= 0.0) || sparsity >= 1.0) {
    throw std::invalid_argument("prune: sparsity must be in [0, 1)");
  }
}

void prune_magnitude(tensor::MatrixF& w, double sparsity) {
  const size_t n = w.size();
  const auto k = static_cast<size_t>(std::floor(sparsity *
                                                static_cast<double>(n)));
  if (k == 0) return;
  std::vector<float> magnitudes(n);
  for (size_t i = 0; i < n; ++i) magnitudes[i] = std::abs(w.flat()[i]);
  std::nth_element(magnitudes.begin(), magnitudes.begin() + (k - 1),
                   magnitudes.end());
  const float threshold = magnitudes[k - 1];
  size_t zeroed = 0;
  for (float& x : w.flat()) {
    if (zeroed < k && std::abs(x) <= threshold) {
      x = 0.0f;
      ++zeroed;
    }
  }
}

void prune_column_balanced(tensor::MatrixF& w, double sparsity) {
  const size_t rows = w.rows();
  const auto k = static_cast<size_t>(std::floor(sparsity *
                                                static_cast<double>(rows)));
  if (k == 0) return;
  std::vector<std::pair<float, size_t>> column(rows);
  for (size_t c = 0; c < w.cols(); ++c) {
    for (size_t r = 0; r < rows; ++r) {
      column[r] = {std::abs(w(r, c)), r};
    }
    std::nth_element(column.begin(), column.begin() + (k - 1),
                     column.end());
    for (size_t i = 0; i < k; ++i) w(column[i].second, c) = 0.0f;
  }
}

}  // namespace

void prune_matrix(tensor::MatrixF& w, double sparsity, PruneMethod method) {
  check_sparsity(sparsity);
  switch (method) {
    case PruneMethod::kMagnitude:
      prune_magnitude(w, sparsity);
      return;
    case PruneMethod::kColumnBalancedBlock:
      prune_column_balanced(w, sparsity);
      return;
  }
  throw std::invalid_argument("prune: unknown method");
}

double measured_sparsity(const tensor::MatrixF& w) {
  if (w.size() == 0) return 0.0;
  size_t zeros = 0;
  for (float x : w.flat()) zeros += (x == 0.0f) ? 1 : 0;
  return static_cast<double>(zeros) / static_cast<double>(w.size());
}

void prune_encoder_weights(ref::EncoderWeights& weights, double sparsity,
                           PruneMethod method) {
  check_sparsity(sparsity);
  for (auto& layer : weights.layers) {
    prune_matrix(layer.wq, sparsity, method);
    prune_matrix(layer.wk, sparsity, method);
    prune_matrix(layer.wv, sparsity, method);
    prune_matrix(layer.wo, sparsity, method);
    prune_matrix(layer.w1, sparsity, method);
    prune_matrix(layer.w2, sparsity, method);
  }
}

void prune_tiles(tensor::MatrixF& w, double sparsity, uint32_t ts) {
  check_sparsity(sparsity);
  if (ts == 0) throw std::invalid_argument("prune_tiles: zero tile");
  const size_t row_tiles = util::ceil_div<size_t>(w.rows(), ts);
  const size_t col_tiles = util::ceil_div<size_t>(w.cols(), ts);
  const size_t total = row_tiles * col_tiles;
  const auto k = static_cast<size_t>(
      std::floor(sparsity * static_cast<double>(total)));
  if (k == 0) return;

  struct TileNorm {
    double norm;
    size_t rt, ct;
  };
  std::vector<TileNorm> tiles;
  tiles.reserve(total);
  for (size_t rt = 0; rt < row_tiles; ++rt) {
    for (size_t ct = 0; ct < col_tiles; ++ct) {
      double norm = 0.0;
      const size_t r1 = std::min(w.rows(), (rt + 1) * size_t{ts});
      const size_t c1 = std::min(w.cols(), (ct + 1) * size_t{ts});
      for (size_t r = rt * ts; r < r1; ++r) {
        for (size_t c = ct * ts; c < c1; ++c) {
          norm += static_cast<double>(w(r, c)) * w(r, c);
        }
      }
      tiles.push_back({norm, rt, ct});
    }
  }
  std::nth_element(tiles.begin(), tiles.begin() + (k - 1), tiles.end(),
                   [](const TileNorm& a, const TileNorm& b) {
                     return a.norm < b.norm;
                   });
  for (size_t i = 0; i < k; ++i) {
    const size_t r1 = std::min(w.rows(), (tiles[i].rt + 1) * size_t{ts});
    const size_t c1 = std::min(w.cols(), (tiles[i].ct + 1) * size_t{ts});
    for (size_t r = tiles[i].rt * ts; r < r1; ++r) {
      for (size_t c = tiles[i].ct * ts; c < c1; ++c) w(r, c) = 0.0f;
    }
  }
}

double tile_occupancy(const tensor::MatrixF& w, uint32_t ts) {
  if (ts == 0) throw std::invalid_argument("tile_occupancy: zero tile");
  const size_t row_tiles = util::ceil_div<size_t>(w.rows(), ts);
  const size_t col_tiles = util::ceil_div<size_t>(w.cols(), ts);
  size_t live = 0;
  for (size_t rt = 0; rt < row_tiles; ++rt) {
    for (size_t ct = 0; ct < col_tiles; ++ct) {
      bool nonzero = false;
      const size_t r1 = std::min(w.rows(), (rt + 1) * size_t{ts});
      const size_t c1 = std::min(w.cols(), (ct + 1) * size_t{ts});
      for (size_t r = rt * ts; r < r1 && !nonzero; ++r) {
        for (size_t c = ct * ts; c < c1; ++c) {
          if (w(r, c) != 0.0f) {
            nonzero = true;
            break;
          }
        }
      }
      live += nonzero ? 1 : 0;
    }
  }
  return static_cast<double>(live) /
         static_cast<double>(row_tiles * col_tiles);
}

FfnOccupancy ffn_tile_occupancy(const ref::EncoderLayerWeights& layer,
                                uint32_t ts_ffn) {
  FfnOccupancy occ;
  occ.ffn1 = tile_occupancy(layer.wo, ts_ffn);
  occ.ffn2 = tile_occupancy(layer.w1, ts_ffn);
  occ.ffn3 = tile_occupancy(layer.w2, ts_ffn);
  return occ;
}

}  // namespace protea::baseline
