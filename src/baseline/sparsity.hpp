// Sparsity / compression scaling model.
//
// The paper's Table II discussion adjusts dense latencies by pruning
// ratios: "If the same sparsity level were applied to ProTEA, its latency
// would mathematically be reduced to 0.448 ms (calculated as
// 4.48 − 4.48 × 0.9)". These helpers reproduce exactly that arithmetic,
// plus the derived throughput and comparison ratios, so the Table II
// narrative numbers can be regenerated.
#pragma once

#include <stdexcept>

namespace protea::baseline {

/// Ideal latency after pruning a `sparsity` fraction of the work:
/// dense_ms * (1 - sparsity). Throws for sparsity outside [0, 1).
double sparsity_adjusted_latency_ms(double dense_ms, double sparsity);

/// Speed-up of `a` over `b` expressed the way the paper writes it
/// ("A is X× faster than B" => latency_b / latency_a).
double speedup(double latency_a_ms, double latency_b_ms);

/// Throughput scaling under sparsity: effective GOPS stays constant for
/// the *executed* operations; dense-equivalent GOPS inflates by
/// 1/(1-sparsity). Returns the dense-equivalent value.
double dense_equivalent_gops(double executed_gops, double sparsity);

/// GOPS per DSP scaled by 1000, Table II's normalized-throughput metric.
double gops_per_dsp_x1000(double gops, uint32_t dsp_count);

}  // namespace protea::baseline
