#include "baseline/published.hpp"

namespace protea::baseline {

const std::vector<FpgaAccelResult>& table2_results() {
  // Values transcribed from Table II of the ProTEA paper.
  static const std::vector<FpgaAccelResult> rows = {
      {
          .citation = "[21] Peng et al., ISQED'21 (column-balanced pruning)",
          .precision = "-",
          .fpga = "Alveo U200",
          .dsp = 3368,
          .latency_ms = 0.32,
          .gops = 555.0,
          .gops_per_dsp_x1000 = 164.0,
          .method = "HLS",
          .sparsity = 0.90,
          .model_zoo_name = "peng21",
          .paper_protea_latency_ms = 4.48,
          .paper_protea_gops = 79.0,
      },
      {
          .citation = "[23] Wojcicki et al., ICFPT'22 (LHC transformer)",
          .precision = "Float32",
          .fpga = "Alveo U250",
          .dsp = 4351,
          .latency_ms = 1.2,
          .gops = 0.0006,
          .gops_per_dsp_x1000 = 0.00013,
          .method = "HLS",
          .sparsity = 0.0,
          .model_zoo_name = "wojcicki23",
          .paper_protea_latency_ms = 0.425,
          .paper_protea_gops = 0.0017,
      },
      {
          .citation = "[25] EFA-Trans (Yang & Su, Electronics'22)",
          .precision = "Int8",
          .fpga = "ZCU102",
          .dsp = 1024,
          .latency_ms = 1.47,
          .gops = 279.0,
          .gops_per_dsp_x1000 = 272.0,
          .method = "HDL",
          .sparsity = 0.0,
          .model_zoo_name = "efa_trans25",
          .paper_protea_latency_ms = 5.18,
          .paper_protea_gops = 83.0,
      },
      {
          .citation = "[28] Qi et al., ICCAD'21 (compression co-design)",
          .precision = "-",
          .fpga = "Alveo U200",
          .dsp = 4145,
          .latency_ms = 15.8,
          .gops = 75.94,
          .gops_per_dsp_x1000 = 18.0,
          .method = "HLS",
          .sparsity = 0.0,
          .model_zoo_name = "qi28",
          .paper_protea_latency_ms = 9.12,
          .paper_protea_gops = 132.0,
      },
      {
          .citation = "[29] FTRANS (Li et al., ISLPED'20)",
          .precision = "Fix16",
          .fpga = "VCU118",
          .dsp = 5647,
          .latency_ms = 2.94,
          .gops = 60.0,
          .gops_per_dsp_x1000 = 11.0,
          .method = "HLS",
          .sparsity = 0.93,
          .model_zoo_name = "peng21",
          .paper_protea_latency_ms = 4.48,
          .paper_protea_gops = 79.0,
      },
  };
  return rows;
}

const std::vector<CrossPlatformResult>& table3_results() {
  // Values transcribed from Table III of the ProTEA paper.
  static const std::vector<CrossPlatformResult> rows = {
      {
          .model_id = "#1",
          .citation = "[21]",
          .platform = "Intel i5-5257U CPU",
          .frequency_ghz = 2.7,
          .latency_ms = 3.54,
          .is_base = true,
          .model_zoo_name = "peng21",
          .paper_protea_latency_ms = 4.48,
          .paper_speedup = 0.79,
      },
      {
          .model_id = "#1",
          .citation = "[21]",
          .platform = "Jetson TX2 GPU",
          .frequency_ghz = 1.3,
          .latency_ms = 0.673,
          .is_base = false,
          .model_zoo_name = "peng21",
          .paper_protea_latency_ms = 4.48,
          .paper_speedup = 5.3,
      },
      {
          .model_id = "#2",
          .citation = "[23]",
          .platform = "NVIDIA Titan XP GPU",
          .frequency_ghz = 1.4,
          .latency_ms = 1.062,
          .is_base = true,
          .model_zoo_name = "wojcicki23",
          .paper_protea_latency_ms = 0.425,
          .paper_speedup = 2.5,
      },
      {
          .model_id = "#3",
          .citation = "[25]",
          .platform = "Intel i5-4460 CPU",
          .frequency_ghz = 3.2,
          .latency_ms = 4.66,
          .is_base = true,
          .model_zoo_name = "efa_trans25",
          .paper_protea_latency_ms = 5.18,
          .paper_speedup = 0.89,
      },
      {
          .model_id = "#3",
          .citation = "[25]",
          .platform = "NVIDIA RTX 3060 GPU",
          .frequency_ghz = 1.3,
          .latency_ms = 0.71,
          .is_base = false,
          .model_zoo_name = "efa_trans25",
          .paper_protea_latency_ms = 5.18,
          .paper_speedup = 6.5,
      },
      {
          .model_id = "#4",
          .citation = "[28]",
          .platform = "NVIDIA Titan XP GPU",
          .frequency_ghz = 1.4,
          .latency_ms = 147.0,
          .is_base = true,
          .model_zoo_name = "qi28",
          .paper_protea_latency_ms = 9.12,
          .paper_speedup = 16.0,
      },
  };
  return rows;
}

ProteaPublished protea_published() { return ProteaPublished{}; }

}  // namespace protea::baseline
