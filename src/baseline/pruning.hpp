// Weight pruning and structured-sparsity analysis.
//
// The paper positions ProTEA against sparse accelerators ([21] uses 90 %
// column-balanced block pruning, FTRANS 93 % block-circulant compression)
// and argues its dense design trades peak speed for programmability. This
// module supplies the other side of that argument: magnitude and
// column-balanced block pruning, tile-occupancy analysis of pruned
// weights under ProTEA's FFN tiling, and the latency model of a
// hypothetical tile-skipping ProTEA variant (§V's "if the same sparsity
// were applied" arithmetic, but computed from real tile occupancy rather
// than the ideal 1-s bound).
#pragma once

#include <cstdint>

#include "ref/weights.hpp"
#include "tensor/matrix.hpp"

namespace protea::baseline {

enum class PruneMethod {
  kMagnitude,            // global magnitude threshold (unstructured)
  kColumnBalancedBlock,  // [21]-style: equal pruning per column block
};

/// Zeroes the `sparsity` fraction of smallest-magnitude entries.
/// kColumnBalancedBlock prunes the same fraction inside every column, so
/// tile-level work stays balanced (the property [21]'s hardware needs).
void prune_matrix(tensor::MatrixF& w, double sparsity, PruneMethod method);

/// Fraction of exactly-zero entries.
double measured_sparsity(const tensor::MatrixF& w);

/// Prunes every large projection matrix of an encoder stack in place
/// (wq/wk/wv/wo/w1/w2); biases and LN parameters are kept dense.
void prune_encoder_weights(ref::EncoderWeights& weights, double sparsity,
                           PruneMethod method);

/// Tile-structured pruning: zeroes whole (ts x ts) tiles, lowest
/// Frobenius norm first, until at least `sparsity` of the tiles are gone.
/// This is the sparsity granularity a tile-skipping ProTEA variant can
/// actually exploit (cf. the block-circulant structure FTRANS imposes).
void prune_tiles(tensor::MatrixF& w, double sparsity, uint32_t ts);

/// Fraction of (ts x ts) weight tiles containing at least one nonzero —
/// the tiles a tile-skipping controller must still schedule. Partial
/// border tiles count like full tiles (the hardware loads them whole).
double tile_occupancy(const tensor::MatrixF& w, uint32_t ts);

/// Occupancy of the three FFN-engine weight streams of one encoder layer
/// under ProTEA's TS_FFN tiling: {wo, w1, w2}.
struct FfnOccupancy {
  double ffn1 = 1.0;  // output projection (wo)
  double ffn2 = 1.0;  // expansion (w1)
  double ffn3 = 1.0;  // contraction (w2)
};
FfnOccupancy ffn_tile_occupancy(const ref::EncoderLayerWeights& layer,
                                uint32_t ts_ffn);

}  // namespace protea::baseline
