#include "baseline/sparsity.hpp"

namespace protea::baseline {

double sparsity_adjusted_latency_ms(double dense_ms, double sparsity) {
  if (!(sparsity >= 0.0) || sparsity >= 1.0) {
    throw std::invalid_argument("sparsity must be in [0, 1)");
  }
  if (!(dense_ms >= 0.0)) {
    throw std::invalid_argument("latency must be non-negative");
  }
  return dense_ms * (1.0 - sparsity);
}

double speedup(double latency_a_ms, double latency_b_ms) {
  if (!(latency_a_ms > 0.0) || !(latency_b_ms > 0.0)) {
    throw std::invalid_argument("speedup: latencies must be positive");
  }
  return latency_b_ms / latency_a_ms;
}

double dense_equivalent_gops(double executed_gops, double sparsity) {
  if (!(sparsity >= 0.0) || sparsity >= 1.0) {
    throw std::invalid_argument("sparsity must be in [0, 1)");
  }
  return executed_gops / (1.0 - sparsity);
}

double gops_per_dsp_x1000(double gops, uint32_t dsp_count) {
  if (dsp_count == 0) {
    throw std::invalid_argument("gops_per_dsp: zero DSP count");
  }
  return gops / static_cast<double>(dsp_count) * 1000.0;
}

}  // namespace protea::baseline
