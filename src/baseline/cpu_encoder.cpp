#include "baseline/cpu_encoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "util/stopwatch.hpp"

namespace protea::baseline {

CpuEncoder::CpuEncoder(ref::EncoderWeights weights, size_t num_threads)
    : weights_(std::move(weights)), pool_(num_threads) {
  weights_.config.validate();
}

tensor::MatrixF CpuEncoder::par_matmul(const tensor::MatrixF& a,
                                       const tensor::MatrixF& b,
                                       std::span<const float> bias) {
  // The packed kernel partitions row panels over the pool; per-element
  // accumulation order is fixed, so results match the serial reference
  // encoder exactly at any thread count.
  if (bias.empty()) return tensor::matmul(a, b, &pool_);
  return tensor::matmul_bias(a, b, bias, &pool_);
}

tensor::MatrixF CpuEncoder::forward_layer(
    const tensor::MatrixF& x, const ref::EncoderLayerWeights& layer) {
  const ref::ModelConfig& cfg = weights_.config;
  const size_t dk = cfg.head_dim();

  tensor::MatrixF q = par_matmul(x, layer.wq, layer.bq);
  tensor::MatrixF k = par_matmul(x, layer.wk, layer.bk);
  tensor::MatrixF v = par_matmul(x, layer.wv, layer.bv);

  const float scale =
      cfg.attn_scale == ref::AttnScale::kInvSqrtDk
          ? 1.0f / std::sqrt(static_cast<float>(dk))
          : 1.0f / static_cast<float>(cfg.d_model);

  tensor::MatrixF concat(cfg.seq_len, cfg.d_model);
  pool_.parallel_for(0, cfg.num_heads, [&](size_t head) {
    tensor::MatrixF qh = q.slice_cols(head * dk, dk);
    tensor::MatrixF kh = k.slice_cols(head * dk, dk);
    tensor::MatrixF vh = v.slice_cols(head * dk, dk);
    tensor::MatrixF logits = tensor::matmul_bt(qh, kh);
    tensor::scale_inplace(logits, scale);
    tensor::softmax_rows_inplace(logits);
    tensor::MatrixF scores = tensor::matmul(logits, vh);
    for (size_t i = 0; i < cfg.seq_len; ++i) {
      for (size_t c = 0; c < dk; ++c) {
        concat(i, head * dk + c) = scores(i, c);
      }
    }
  });

  tensor::MatrixF proj = par_matmul(concat, layer.wo, layer.bo);
  tensor::MatrixF x1 = tensor::add(x, proj);
  tensor::layer_norm_rows_inplace(x1, layer.ln1_gamma, layer.ln1_beta);

  tensor::MatrixF hidden = par_matmul(x1, layer.w1, layer.b1);
  if (cfg.activation == ref::Activation::kRelu) {
    tensor::relu_inplace(hidden);
  } else {
    tensor::gelu_inplace(hidden);
  }
  tensor::MatrixF ffn_out = par_matmul(hidden, layer.w2, layer.b2);
  tensor::MatrixF x2 = tensor::add(x1, ffn_out);
  tensor::layer_norm_rows_inplace(x2, layer.ln2_gamma, layer.ln2_beta);
  return x2;
}

tensor::MatrixF CpuEncoder::forward(const tensor::MatrixF& input) {
  tensor::MatrixF x = input;
  for (const auto& layer : weights_.layers) x = forward_layer(x, layer);
  return x;
}

CpuMeasurement CpuEncoder::measure(const tensor::MatrixF& input, int reps,
                                   int warmup) {
  for (int i = 0; i < warmup; ++i) forward(input);
  CpuMeasurement result;
  result.repetitions = reps;
  result.min_ms = std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    util::Stopwatch watch;
    forward(input);
    const double ms = watch.milliseconds();
    total += ms;
    result.min_ms = std::min(result.min_ms, ms);
    result.max_ms = std::max(result.max_ms, ms);
  }
  result.mean_ms = total / reps;
  return result;
}

}  // namespace protea::baseline
