// Roofline analysis of a programmed accelerator.
//
// Classifies each workload (and each engine stage) as compute-bound or
// bandwidth-bound on the modeled U55C: peak compute = engine PEs x 2 ops
// x Fmax; peak bandwidth = the HBM channels bound to the kernel. The
// paper's overlap claim ("latency reflects computation time, accounting
// for the overlap of data loading and computation") holds exactly when
// arithmetic intensity clears the ridge point — this module makes that
// statement quantitative.
#pragma once

#include <string>
#include <vector>

#include "hw/synth_params.hpp"

namespace protea::hw {

struct RooflinePoint {
  std::string name;
  double arithmetic_intensity = 0.0;  // ops per byte moved from HBM
  double achieved_gops = 0.0;
  double peak_compute_gops = 0.0;
  double peak_bandwidth_gbps = 0.0;
  double ridge_intensity = 0.0;       // ops/byte where the roofs meet
  bool compute_bound = false;
};

/// Peak compute of the synthesized engine array in GOPS (2 ops/MAC).
double peak_compute_gops(const SynthParams& params, double fmax_mhz);

/// Sustained HBM bandwidth available to the kernel in GB/s.
double peak_bandwidth_gbps(const SynthParams& params, double fmax_mhz);

/// Builds a roofline point from measured totals.
RooflinePoint make_roofline_point(const SynthParams& params,
                                  double fmax_mhz, const std::string& name,
                                  uint64_t ops, uint64_t bytes,
                                  double latency_ms);

}  // namespace protea::hw
