#include "hw/power_model.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace protea::hw {
namespace {

// UltraScale+ dynamic-power orders of magnitude at nominal voltage:
// a DSP48E2 multiply-accumulate toggling every cycle draws ~2.5 mW at
// 200 MHz (scales linearly with frequency and activity); a busy BRAM36
// ~1.5 mW; fabric logic ~0.3 uW per utilized LUT. Static power of a
// UV+HBM device (U55C class) is ~20 W with the HBM stacks on standby.
constexpr double kDspMwPerMhzFullActivity = 2.5 / 200.0;
constexpr double kBramMwPerMhzFullActivity = 1.5 / 200.0;
constexpr double kLogicUwPerLutPerMhz = 0.3 / 200.0;
constexpr double kStaticWatts = 20.0;
constexpr double kHbmMaxWatts = 10.0;  // all 32 channels saturated

}  // namespace

PowerBreakdown estimate_power(const SynthParams& params, double fmax_mhz,
                              double activity, double hbm_share) {
  if (!(activity >= 0.0) || activity > 1.0) {
    throw std::invalid_argument("estimate_power: activity in [0,1]");
  }
  if (!(hbm_share >= 0.0) || hbm_share > 1.0) {
    throw std::invalid_argument("estimate_power: hbm_share in [0,1]");
  }
  if (!(fmax_mhz > 0.0)) {
    throw std::invalid_argument("estimate_power: frequency must be > 0");
  }
  const ResourceReport resources = estimate_resources(params);

  PowerBreakdown p;
  p.static_w = kStaticWatts;
  p.dsp_w = static_cast<double>(resources.used.dsp) *
            kDspMwPerMhzFullActivity * fmax_mhz * activity * 1e-3;
  p.bram_w = static_cast<double>(resources.used.bram36 +
                                 resources.total_banks) *
             kBramMwPerMhzFullActivity * fmax_mhz * activity * 1e-3;
  p.logic_w = static_cast<double>(resources.used.lut) *
              kLogicUwPerLutPerMhz * fmax_mhz * activity * 1e-6;
  p.hbm_w = kHbmMaxWatts * hbm_share;
  p.total_w = p.static_w + p.dsp_w + p.bram_w + p.logic_w + p.hbm_w;
  return p;
}

EnergyReport estimate_energy(const SynthParams& params, double fmax_mhz,
                             double activity, double hbm_share,
                             double latency_ms, double gops) {
  if (!(latency_ms > 0.0)) {
    throw std::invalid_argument("estimate_energy: latency must be > 0");
  }
  EnergyReport report;
  report.power =
      estimate_power(params, fmax_mhz, activity, hbm_share);
  report.latency_ms = latency_ms;
  report.energy_mj = report.power.total_w * latency_ms;  // W * ms = mJ
  report.gops_per_watt = gops / report.power.total_w;
  return report;
}

double platform_tdp_watts(const std::string& platform_name) {
  const std::string lower = util::to_lower(platform_name);
  // Published TDPs of the Table III platforms.
  if (lower.find("titan xp") != std::string::npos) return 250.0;
  if (lower.find("rtx 3060") != std::string::npos) return 170.0;
  if (lower.find("jetson") != std::string::npos) return 15.0;
  if (lower.find("i5-5257u") != std::string::npos) return 28.0;
  if (lower.find("i5-4460") != std::string::npos) return 84.0;
  throw std::invalid_argument("platform_tdp_watts: unknown platform '" +
                              platform_name + "'");
}

}  // namespace protea::hw
