// Cycle-accounting primitives mirroring how Vitis HLS schedules loops.
//
// ProTEA's latency is dominated by deterministic loop structure: inner
// loops fully unrolled into PE arrays, middle loops pipelined at II=1,
// outer loops serialized with `#pragma HLS pipeline off`. These helpers
// reproduce the corresponding cycle formulas so engine latencies fall out
// of the same trip counts as the paper's Algorithms 1-4.
#pragma once

#include <cstdint>

namespace protea::hw {

using Cycles = uint64_t;

/// Cycle counts of a pipelined loop: first result after `depth` cycles,
/// then one iteration per `ii` cycles. Zero trips costs nothing.
constexpr Cycles pipelined_loop(uint64_t trips, uint64_t ii = 1,
                                uint64_t depth = 1) {
  if (trips == 0) return 0;
  return depth + (trips - 1) * ii;
}

/// A serial (pipeline-off) outer loop around a pipelined body:
/// each outer iteration pays the full body latency plus loop control.
constexpr Cycles serial_outer_loop(uint64_t outer_trips, Cycles body,
                                   Cycles control_overhead) {
  return outer_trips * (body + control_overhead);
}

/// Latency of `tiles` double-buffered iterations where loading tile i+1
/// overlaps computing tile i (the paper's "overlap of data loading and
/// computation"): prologue load + max-compose + epilogue compute.
constexpr Cycles overlapped_tiles(uint64_t tiles, Cycles load_per_tile,
                                  Cycles compute_per_tile) {
  if (tiles == 0) return 0;
  const Cycles steady =
      load_per_tile > compute_per_tile ? load_per_tile : compute_per_tile;
  return load_per_tile + (tiles - 1) * steady + compute_per_tile;
}

/// Non-overlapped variant (ablation): strict load-then-compute per tile.
constexpr Cycles sequential_tiles(uint64_t tiles, Cycles load_per_tile,
                                  Cycles compute_per_tile) {
  return tiles * (load_per_tile + compute_per_tile);
}

/// Converts cycles at `freq_mhz` to milliseconds.
constexpr double cycles_to_ms(Cycles cycles, double freq_mhz) {
  return static_cast<double>(cycles) / (freq_mhz * 1e3);
}

/// Converts cycles at `freq_mhz` to microseconds.
constexpr double cycles_to_us(Cycles cycles, double freq_mhz) {
  return static_cast<double>(cycles) / freq_mhz;
}

}  // namespace protea::hw
