#include "hw/bram.hpp"

#include <algorithm>

#include "util/math_util.hpp"

namespace protea::hw {

BankingPlan plan_banking(uint64_t total_bytes, uint32_t parallel_reads) {
  BankingPlan plan;
  if (total_bytes == 0) return plan;
  const uint32_t reads = std::max<uint32_t>(1, parallel_reads);
  // Each dual-port bank can serve kBramPorts reads per cycle; HLS rounds
  // the cyclic partition factor up to cover the demanded parallelism.
  plan.banks = util::ceil_div<uint64_t>(reads, kBramPorts);
  plan.bytes_per_bank = util::ceil_div(total_bytes, plan.banks);
  if (plan.bytes_per_bank < kLutramThresholdBytes) {
    plan.uses_lutram = true;
    plan.lutram_bytes = total_bytes;
    plan.bram36_count = 0;
  } else {
    plan.bram36_count =
        plan.banks * util::ceil_div(plan.bytes_per_bank, kBram36Bytes);
  }
  return plan;
}

BankedBuffer::BankedBuffer(uint64_t words, uint32_t word_bytes,
                           uint64_t banks)
    : words_(words), banks_(banks) {
  if (banks == 0) throw std::invalid_argument("BankedBuffer: zero banks");
  if (word_bytes == 0) {
    throw std::invalid_argument("BankedBuffer: zero word size");
  }
  ports_this_cycle_.assign(banks, 0);
}

void BankedBuffer::begin_cycle() {
  std::fill(ports_this_cycle_.begin(), ports_this_cycle_.end(), 0u);
}

void BankedBuffer::access(uint64_t index) {
  if (index >= words_) {
    throw std::out_of_range("BankedBuffer: index out of range");
  }
  const uint64_t bank = index % banks_;
  uint32_t& ports = ports_this_cycle_[bank];
  ++ports;
  ++total_accesses_;
  peak_ports_ = std::max(peak_ports_, ports);
  if (ports > kBramPorts) {
    throw std::runtime_error(
        "BankedBuffer: port conflict — more than 2 accesses to one bank "
        "in a single cycle (partitioning bug)");
  }
}

}  // namespace protea::hw
