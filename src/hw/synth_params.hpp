// Synthesis-time parameters of the ProTEA accelerator.
//
// These are the quantities the paper fixes *before* synthesis (§IV-E): the
// tile sizes TS_MHA and TS_FFN, plus the maximum model dimensions the
// buffers and PE arrays are sized for. Everything else (h, N, d_model, SL)
// is runtime-programmable up to these maxima. Changing anything in this
// struct means "re-synthesizing the hardware".
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/math_util.hpp"

namespace protea::hw {

struct SynthParams {
  uint32_t ts_mha = 64;        // MHA weight tile width (columns)
  uint32_t ts_ffn = 128;       // FFN tile size (square tiles)
  uint32_t max_heads = 8;      // attention-head engines instantiated
  uint32_t max_d_model = 768;  // widest embedding the buffers hold
  uint32_t max_seq_len = 128;  // longest sequence the buffers hold
  uint32_t sl_unroll = 64;     // SV engine unroll factor (PEs per head)
  uint32_t bits = 8;           // fixed-point word width
  uint32_t hbm_channels_used = 8;

  /// Per-head projection width the QK engine is unrolled for.
  uint32_t head_dim_max() const { return max_d_model / max_heads; }

  /// Number of MHA weight tiles at the synthesized maximum width.
  uint32_t tiles_mha_max() const {
    return util::ceil_div(max_d_model, ts_mha);
  }
  /// Number of FFN tiles per dimension at the synthesized maximum width.
  uint32_t tiles_ffn_max() const {
    return util::ceil_div(max_d_model, ts_ffn);
  }
  /// FFN hidden width at the synthesized maximum (4 * d_model).
  uint32_t max_ffn_dim() const { return 4 * max_d_model; }

  void validate() const {
    if (ts_mha == 0 || ts_ffn == 0 || max_heads == 0 || max_d_model == 0 ||
        max_seq_len == 0 || sl_unroll == 0) {
      throw std::invalid_argument("SynthParams: zero field");
    }
    if (max_d_model % max_heads != 0) {
      throw std::invalid_argument(
          "SynthParams: max_d_model must divide by max_heads");
    }
    if (bits != 8 && bits != 16) {
      throw std::invalid_argument("SynthParams: bits must be 8 or 16");
    }
  }
};

/// The configuration the paper synthesizes once and evaluates throughout
/// Table I: TS_MHA=64, TS_FFN=128, 8 heads, BERT-variant maxima.
inline SynthParams paper_synth_params() { return SynthParams{}; }

}  // namespace protea::hw
