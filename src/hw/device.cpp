#include "hw/device.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace protea::hw {

const Device& alveo_u55c() {
  static const Device d{
      .name = "Alveo U55C",
      .budget = {.dsp = 9024,
                 .lut = 1303680,
                 .ff = 2607360,
                 .bram36 = 2016,
                 .uram = 960},
      .hbm_bandwidth_gbps = 460.0,
      .hbm_channels = 32,
      .ddr_bandwidth_gbps = 0.0,
  };
  return d;
}

const Device& alveo_u200() {
  static const Device d{
      .name = "Alveo U200",
      .budget = {.dsp = 6840,
                 .lut = 1182240,
                 .ff = 2364480,
                 .bram36 = 2160,
                 .uram = 960},
      .hbm_bandwidth_gbps = 0.0,
      .hbm_channels = 0,
      .ddr_bandwidth_gbps = 77.0,
  };
  return d;
}

const Device& alveo_u250() {
  static const Device d{
      .name = "Alveo U250",
      .budget = {.dsp = 12288,
                 .lut = 1728000,
                 .ff = 3456000,
                 .bram36 = 2688,
                 .uram = 1280},
      .hbm_bandwidth_gbps = 0.0,
      .hbm_channels = 0,
      .ddr_bandwidth_gbps = 77.0,
  };
  return d;
}

const Device& zcu102() {
  static const Device d{
      .name = "ZCU102",
      .budget = {.dsp = 2520,
                 .lut = 274080,
                 .ff = 548160,
                 .bram36 = 912,
                 .uram = 0},
      .hbm_bandwidth_gbps = 0.0,
      .hbm_channels = 0,
      .ddr_bandwidth_gbps = 19.2,
  };
  return d;
}

const Device& vcu118() {
  static const Device d{
      .name = "VCU118",
      .budget = {.dsp = 6840,
                 .lut = 1182240,
                 .ff = 2364480,
                 .bram36 = 2160,
                 .uram = 960},
      .hbm_bandwidth_gbps = 0.0,
      .hbm_channels = 0,
      .ddr_bandwidth_gbps = 21.3,
  };
  return d;
}

std::vector<const Device*> all_devices() {
  return {&alveo_u55c(), &alveo_u200(), &alveo_u250(), &zcu102(), &vcu118()};
}

const Device& find_device(std::string_view name) {
  const std::string lower = util::to_lower(name);
  for (const Device* d : all_devices()) {
    if (util::to_lower(d->name) == lower) return *d;
  }
  // Accept short aliases too.
  if (lower == "u55c") return alveo_u55c();
  if (lower == "u200") return alveo_u200();
  if (lower == "u250") return alveo_u250();
  throw std::invalid_argument("find_device: unknown device '" +
                              std::string(name) + "'");
}

double utilization(uint64_t used, uint64_t budget) {
  if (budget == 0) return 0.0;
  return static_cast<double>(used) / static_cast<double>(budget);
}

}  // namespace protea::hw
