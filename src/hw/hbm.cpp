#include "hw/hbm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math_util.hpp"

namespace protea::hw {

HbmModel::HbmModel(HbmConfig config) : config_(config), axi_(config.axi) {
  if (config_.channels == 0) {
    throw std::invalid_argument("HbmModel: zero channels");
  }
  if (!(config_.efficiency > 0.0) || config_.efficiency > 1.0) {
    throw std::invalid_argument("HbmModel: efficiency must be in (0, 1]");
  }
}

Cycles HbmModel::load_cycles(uint64_t bytes, uint32_t channels_used) const {
  if (channels_used == 0 || channels_used > config_.channels) {
    throw std::invalid_argument("HbmModel: bad channel count");
  }
  if (bytes == 0) return 0;
  const uint64_t per_channel = util::ceil_div<uint64_t>(bytes, channels_used);
  const Cycles raw = axi_.read_cycles(per_channel);
  return static_cast<Cycles>(
      std::ceil(static_cast<double>(raw) / config_.efficiency));
}

Cycles HbmModel::concurrent_load_cycles(
    const std::vector<uint64_t>& per_channel) const {
  if (per_channel.size() > config_.channels) {
    throw std::invalid_argument("HbmModel: more transfers than channels");
  }
  Cycles worst = 0;
  for (uint64_t bytes : per_channel) {
    const Cycles raw = axi_.read_cycles(bytes);
    const auto scaled = static_cast<Cycles>(
        std::ceil(static_cast<double>(raw) / config_.efficiency));
    worst = std::max(worst, scaled);
  }
  return worst;
}

double HbmModel::bytes_per_cycle(uint32_t channels_used) const {
  if (channels_used == 0 || channels_used > config_.channels) {
    throw std::invalid_argument("HbmModel: bad channel count");
  }
  return static_cast<double>(axi_.bytes_per_beat()) * config_.efficiency *
         static_cast<double>(channels_used);
}

}  // namespace protea::hw
