#include "hw/roofline.hpp"

#include <stdexcept>

#include "hw/hbm.hpp"
#include "hw/resource_model.hpp"

namespace protea::hw {

double peak_compute_gops(const SynthParams& params, double fmax_mhz) {
  if (!(fmax_mhz > 0.0)) {
    throw std::invalid_argument("peak_compute_gops: bad frequency");
  }
  const ResourceReport resources = estimate_resources(params);
  // Each PE performs one MAC (2 ops) per cycle.
  return static_cast<double>(resources.total_pes) * 2.0 * fmax_mhz * 1e-3;
}

double peak_bandwidth_gbps(const SynthParams& params, double fmax_mhz) {
  const HbmModel hbm;
  // bytes/cycle over the bound channels at the kernel clock.
  return hbm.bytes_per_cycle(params.hbm_channels_used) * fmax_mhz * 1e-3;
}

RooflinePoint make_roofline_point(const SynthParams& params,
                                  double fmax_mhz, const std::string& name,
                                  uint64_t ops, uint64_t bytes,
                                  double latency_ms) {
  if (bytes == 0) {
    throw std::invalid_argument("make_roofline_point: zero bytes");
  }
  if (!(latency_ms > 0.0)) {
    throw std::invalid_argument("make_roofline_point: bad latency");
  }
  RooflinePoint point;
  point.name = name;
  point.arithmetic_intensity =
      static_cast<double>(ops) / static_cast<double>(bytes);
  point.achieved_gops =
      static_cast<double>(ops) / (latency_ms * 1e-3) / 1e9;
  point.peak_compute_gops = peak_compute_gops(params, fmax_mhz);
  point.peak_bandwidth_gbps = peak_bandwidth_gbps(params, fmax_mhz);
  point.ridge_intensity =
      point.peak_compute_gops / point.peak_bandwidth_gbps;
  point.compute_bound =
      point.arithmetic_intensity >= point.ridge_intensity;
  return point;
}

}  // namespace protea::hw
