#include "hw/frequency_model.hpp"

#include <algorithm>

namespace protea::hw {
namespace {

// Penalty slopes (MHz per unit of tile size away from the sweet spot).
// Fitted to reproduce Fig. 7's ordering: the 12-tile MHA series (TS=64)
// achieves the highest frequency; halving the tile count (TS=128) costs
// ~58 MHz of congestion, while quadrupling it (TS=16) costs ~26 MHz of
// bank-mux depth. FFN behaves the same around TS=128.
constexpr double kMhaOverSlope = 0.90;   // per element above TS_MHA=64
constexpr double kMhaUnderSlope = 0.55;  // per element below TS_MHA=64
constexpr double kFfnOverSlope = 0.55;   // per element above TS_FFN=128
constexpr double kFfnUnderSlope = 0.40;  // per element below TS_FFN=128
constexpr double kBaseMhz = 200.0;
constexpr double kFloorMhz = 60.0;
constexpr uint32_t kMhaSweetSpot = 64;
constexpr uint32_t kFfnSweetSpot = 128;

double tile_penalty(uint32_t ts, uint32_t sweet, double over_slope,
                    double under_slope) {
  if (ts >= sweet) {
    return over_slope * static_cast<double>(ts - sweet);
  }
  return under_slope * static_cast<double>(sweet - ts);
}

}  // namespace

FrequencyBreakdown frequency_model(const SynthParams& params) {
  params.validate();
  FrequencyBreakdown out;
  out.base_mhz = kBaseMhz;
  out.mha_penalty =
      tile_penalty(params.ts_mha, kMhaSweetSpot, kMhaOverSlope,
                   kMhaUnderSlope);
  out.ffn_penalty =
      tile_penalty(params.ts_ffn, kFfnSweetSpot, kFfnOverSlope,
                   kFfnUnderSlope);
  out.fmax_mhz =
      std::max(kFloorMhz, kBaseMhz - out.mha_penalty - out.ffn_penalty);
  return out;
}

double fmax_mhz(const SynthParams& params) {
  return frequency_model(params).fmax_mhz;
}

}  // namespace protea::hw
