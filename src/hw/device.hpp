// FPGA device database: resource budgets of the boards appearing in the
// paper's evaluation (Tables I and II).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace protea::hw {

struct ResourceBudget {
  uint64_t dsp = 0;
  uint64_t lut = 0;
  uint64_t ff = 0;
  uint64_t bram36 = 0;   // 36-Kbit block RAMs
  uint64_t uram = 0;     // UltraRAM blocks
};

struct Device {
  std::string name;
  ResourceBudget budget;
  double hbm_bandwidth_gbps = 0.0;  // 0 when the board has no HBM
  uint32_t hbm_channels = 0;
  double ddr_bandwidth_gbps = 0.0;
};

/// Alveo U55C: the paper's platform. 9024 DSP slices, 1.304 M LUTs,
/// 2.607 M FFs, 2016 BRAM36, 960 URAM, 16 GB HBM2 at 460 GB/s.
const Device& alveo_u55c();

/// Alveo U200 (Peng et al. [21], Qi et al. [28]).
const Device& alveo_u200();

/// Alveo U250 (Wojcicki et al. [23]).
const Device& alveo_u250();

/// Zynq UltraScale+ ZCU102 (EFA-Trans [25]).
const Device& zcu102();

/// Virtex UltraScale+ VCU118 (FTRANS [29]).
const Device& vcu118();

/// All registered devices.
std::vector<const Device*> all_devices();

/// Lookup by case-insensitive name; throws std::invalid_argument.
const Device& find_device(std::string_view name);

/// Utilization of `used` against `budget` as a fraction (0..1+).
double utilization(uint64_t used, uint64_t budget);

}  // namespace protea::hw
