// Power and energy model.
//
// The paper motivates FPGAs with "low run time inference latencies with
// efficient power consumption" and compares against GPUs with 70-250 W
// TDPs. This model estimates ProTEA's power from resource activity —
// per-DSP/BRAM/LUT dynamic energy coefficients at the modeled clock plus
// static device power — so the benches can report energy-per-inference
// next to latency. Coefficients follow Xilinx UltraScale+ power
// characterization orders of magnitude (documented per constant); they
// drive *relative* comparisons, not sign-off numbers.
#pragma once

#include "hw/resource_model.hpp"
#include "hw/synth_params.hpp"

namespace protea::hw {

struct PowerBreakdown {
  double static_w = 0.0;     // device leakage + HBM standby
  double dsp_w = 0.0;        // DSP48 dynamic
  double bram_w = 0.0;       // BRAM/LUTRAM dynamic
  double logic_w = 0.0;      // LUT/FF fabric dynamic
  double hbm_w = 0.0;        // HBM transfer power
  double total_w = 0.0;
};

struct EnergyReport {
  PowerBreakdown power;
  double latency_ms = 0.0;
  double energy_mj = 0.0;           // per inference
  double gops_per_watt = 0.0;
};

/// Average power of a synthesized configuration running at `fmax_mhz`
/// with the given average datapath activity (0..1, the DSP utilization
/// the perf model reports) and HBM bandwidth share.
PowerBreakdown estimate_power(const SynthParams& params, double fmax_mhz,
                              double activity, double hbm_share);

/// Energy per inference from a latency + throughput pair.
EnergyReport estimate_energy(const SynthParams& params, double fmax_mhz,
                             double activity, double hbm_share,
                             double latency_ms, double gops);

/// Published TDPs of the comparison platforms (Table III), for
/// energy-ratio context.
double platform_tdp_watts(const std::string& platform_name);

}  // namespace protea::hw
