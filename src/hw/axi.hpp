// AXI4 master burst-transfer model.
//
// ProTEA fetches inputs and weights from HBM through AXI4 master
// interfaces (§IV, [34]). Transfer latency in cycles is deterministic:
// bursts of up to 256 beats on a `bus_bits`-wide bus, one beat per cycle,
// plus a fixed per-burst handshake overhead.
#pragma once

#include <cstdint>

#include "hw/clock.hpp"

namespace protea::hw {

struct AxiConfig {
  uint32_t bus_bits = 512;        // data bus width
  uint32_t max_burst_beats = 256; // AXI4 INCR burst cap
  Cycles burst_overhead = 12;     // address handshake + first-beat latency
};

class AxiMaster {
 public:
  explicit AxiMaster(AxiConfig config = {});

  const AxiConfig& config() const { return config_; }
  uint32_t bytes_per_beat() const { return config_.bus_bits / 8; }

  /// Cycles to read `bytes` as a sequence of maximal bursts.
  Cycles read_cycles(uint64_t bytes) const;

  /// Cycles to write `bytes` (same burst structure).
  Cycles write_cycles(uint64_t bytes) const { return read_cycles(bytes); }

  /// Cumulative traffic counters (bytes), for bandwidth reports.
  void record_read(uint64_t bytes) { bytes_read_ += bytes; }
  void record_write(uint64_t bytes) { bytes_written_ += bytes; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  AxiConfig config_;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace protea::hw
