#include "hw/axi.hpp"

#include <stdexcept>

#include "util/math_util.hpp"

namespace protea::hw {

AxiMaster::AxiMaster(AxiConfig config) : config_(config) {
  if (config_.bus_bits == 0 || config_.bus_bits % 8 != 0) {
    throw std::invalid_argument("AxiMaster: bus width must be a multiple of 8");
  }
  if (config_.max_burst_beats == 0) {
    throw std::invalid_argument("AxiMaster: burst length must be positive");
  }
}

Cycles AxiMaster::read_cycles(uint64_t bytes) const {
  if (bytes == 0) return 0;
  const uint64_t beats = util::ceil_div<uint64_t>(bytes, bytes_per_beat());
  const uint64_t bursts =
      util::ceil_div<uint64_t>(beats, config_.max_burst_beats);
  return beats + bursts * config_.burst_overhead;
}

}  // namespace protea::hw
