// FPGA resource model for a synthesized ProTEA configuration.
//
// Reproduces the paper's Table I utilization analytically:
//   DSP  = h * (3*TS_MHA + d_max/h + SL_unroll)   // QKV + QK + SV engines
//        + TS_FFN + TS_FFN + 4*TS_FFN             // FFN1/2/3 engines
//        + auxiliary (softmax scaling, LN, requant)
// which evaluates to 3612 for the paper's synthesis point — exactly the
// 40 % of the U55C's 9024 DSPs that Table I reports. LUT/FF counts are a
// linear model over PEs, memory banks and fixed infrastructure whose
// coefficients are calibrated once against Table I (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/bram.hpp"
#include "hw/device.hpp"
#include "hw/synth_params.hpp"

namespace protea::hw {

struct EngineResources {
  std::string name;
  uint64_t instances = 1;   // e.g. one per head
  uint64_t pes = 0;         // DSP-mapped MACs per instance
  uint64_t banks = 0;       // memory banks per instance
  uint64_t bram36 = 0;      // block RAMs per instance
  uint64_t lutram_bytes = 0;
};

struct ResourceReport {
  ResourceBudget used;
  std::vector<EngineResources> engines;
  uint64_t total_pes = 0;        // DSP-mapped MACs across all engines
  uint64_t total_banks = 0;
  uint64_t aux_dsp = 0;          // softmax / LN / requant DSPs

  /// True when `used` fits inside `budget` in every category.
  bool fits(const ResourceBudget& budget) const;

  /// True when `used` fits with an implementation margin on the
  /// fabric resources (LUT/FF): place-and-route fails well before 100 %
  /// utilization, so routable designs keep LUTs below ~`margin` of the
  /// device. DSP/BRAM columns are hard macros and use the full budget.
  bool fits_routable(const ResourceBudget& budget,
                     double margin = 0.85) const;
};

/// Full resource estimate for a synthesis configuration.
ResourceReport estimate_resources(const SynthParams& params);

/// The largest head count for which the configuration still fits the
/// device (the paper: "the optimal number of parallel attention heads was
/// determined to be 8 on the Alveo U55C to avoid overutilization").
uint32_t max_heads_fitting(SynthParams params, const Device& device);

}  // namespace protea::hw
