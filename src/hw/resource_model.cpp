#include "hw/resource_model.hpp"

#include <algorithm>

#include "util/math_util.hpp"

namespace protea::hw {
namespace {

// --- Calibrated linear-model coefficients ---------------------------------
// LUT/FF per DSP-mapped PE (MAC control, operand registers, accumulator
// feedback mux) and per memory bank (address decode, write mux). The fixed
// terms cover the softmax LUT cores, the LN units, AXI masters and the
// control FSMs. Calibrated once so the paper's synthesis point
// (TS_MHA=64, TS_FFN=128, h=8) reproduces Table I's 993107 LUTs /
// 704115 FFs; see EXPERIMENTS.md "Resource calibration".
constexpr uint64_t kLutPerPe = 177;
constexpr uint64_t kLutPerBank = 80;
constexpr uint64_t kLutSoftmaxPerHead = 8192;
constexpr uint64_t kLutLayerNormUnit = 24576;
constexpr uint64_t kLutAxiAndControl = 25571;

constexpr uint64_t kFfPerPe = 143;
constexpr uint64_t kFfPerBank = 40;
constexpr uint64_t kFfSoftmaxPerHead = 4096;
constexpr uint64_t kFfLayerNormUnit = 12288;
constexpr uint64_t kFfAxiAndControl = 25019;

// Auxiliary DSPs: 2 per head for the softmax scale multiply, 4 per LN
// unit (mean/variance/normalize pipeline), 4 for output requantization.
constexpr uint64_t kDspSoftmaxPerHead = 2;
constexpr uint64_t kDspPerLayerNorm = 4;
constexpr uint64_t kDspRequant = 4;

EngineResources make_engine(std::string name, uint64_t instances,
                            uint64_t pes,
                            const std::vector<BankingPlan>& plans) {
  EngineResources e;
  e.name = std::move(name);
  e.instances = instances;
  e.pes = pes;
  for (const auto& p : plans) {
    e.banks += p.banks;
    e.bram36 += p.bram36_count;
    e.lutram_bytes += p.lutram_bytes;
  }
  return e;
}

}  // namespace

bool ResourceReport::fits(const ResourceBudget& budget) const {
  return used.dsp <= budget.dsp && used.lut <= budget.lut &&
         used.ff <= budget.ff && used.bram36 <= budget.bram36;
}

bool ResourceReport::fits_routable(const ResourceBudget& budget,
                                   double margin) const {
  return used.dsp <= budget.dsp && used.bram36 <= budget.bram36 &&
         static_cast<double>(used.lut) <=
             margin * static_cast<double>(budget.lut) &&
         static_cast<double>(used.ff) <=
             margin * static_cast<double>(budget.ff);
}

ResourceReport estimate_resources(const SynthParams& p) {
  p.validate();
  ResourceReport report;

  const uint64_t word = p.bits / 8;
  const uint64_t dk = p.head_dim_max();
  const uint64_t sl = p.max_seq_len;

  // --- QKV_CE (one per head) ----------------------------------------------
  // PEs: the innermost tile loop is fully unrolled for the three parallel
  // projection streams -> 3*TS_MHA MACs. Buffers: Wq/Wk/Wv tiles
  // (dk x TS_MHA each, TS_MHA parallel reads), X tile (SL x TS_MHA).
  {
    std::vector<BankingPlan> plans;
    for (int i = 0; i < 3; ++i) {
      plans.push_back(plan_banking(dk * p.ts_mha * word, p.ts_mha));
    }
    plans.push_back(plan_banking(sl * p.ts_mha * word, p.ts_mha));
    // Q/K/V output buffers (SL x dk), written once per cycle.
    for (int i = 0; i < 3; ++i) {
      plans.push_back(plan_banking(sl * dk * word, 2));
    }
    report.engines.push_back(
        make_engine("QKV_CE", p.max_heads, 3ull * p.ts_mha, plans));
  }

  // --- QK_CE (one per head) -------------------------------------------------
  // PEs: inner loop over dk fully unrolled. Buffers: Q and K read with dk
  // parallelism; S output (SL x SL).
  {
    std::vector<BankingPlan> plans;
    plans.push_back(plan_banking(sl * dk * word, static_cast<uint32_t>(dk)));
    plans.push_back(plan_banking(sl * dk * word, static_cast<uint32_t>(dk)));
    plans.push_back(plan_banking(sl * sl * word, 2));
    report.engines.push_back(make_engine("QK_CE", p.max_heads, dk, plans));
  }

  // --- SV_CE (one per head) -------------------------------------------------
  // PEs: inner loop over the sequence unrolled by sl_unroll. Buffers: S and
  // V read with sl_unroll parallelism; SV output (SL x dk).
  {
    std::vector<BankingPlan> plans;
    plans.push_back(plan_banking(sl * sl * word, p.sl_unroll));
    plans.push_back(plan_banking(sl * dk * word, p.sl_unroll));
    plans.push_back(plan_banking(sl * dk * word, 2));
    report.engines.push_back(
        make_engine("SV_CE", p.max_heads, p.sl_unroll, plans));
  }

  // --- FFN engines (one each) ------------------------------------------------
  // FFN1/FFN2: TS_FFN PEs; FFN3: 4*TS_FFN PEs (paper §IV-B). Buffers:
  // weight tile (TS_FFN^2), input tile (SL x TS_FFN), accumulators.
  auto ffn_plans = [&](uint64_t parallel) {
    std::vector<BankingPlan> plans;
    plans.push_back(plan_banking(
        static_cast<uint64_t>(p.ts_ffn) * p.ts_ffn * word,
        static_cast<uint32_t>(parallel)));
    plans.push_back(plan_banking(sl * p.ts_ffn * word,
                                 static_cast<uint32_t>(parallel)));
    plans.push_back(plan_banking(sl * p.max_d_model * word, 2));
    return plans;
  };
  report.engines.push_back(
      make_engine("FFN1_CE", 1, p.ts_ffn, ffn_plans(p.ts_ffn)));
  report.engines.push_back(
      make_engine("FFN2_CE", 1, p.ts_ffn, ffn_plans(p.ts_ffn)));
  report.engines.push_back(
      make_engine("FFN3_CE", 1, 4ull * p.ts_ffn, ffn_plans(p.ts_ffn)));

  // --- Totals -----------------------------------------------------------------
  for (const auto& e : report.engines) {
    report.total_pes += e.instances * e.pes;
    report.total_banks += e.instances * e.banks;
    report.used.bram36 += e.instances * e.bram36;
  }
  report.aux_dsp = kDspSoftmaxPerHead * p.max_heads +
                   2 * kDspPerLayerNorm + kDspRequant;

  report.used.dsp = report.total_pes + report.aux_dsp;
  report.used.lut = kLutPerPe * report.total_pes +
                    kLutPerBank * report.total_banks +
                    kLutSoftmaxPerHead * p.max_heads +
                    2 * kLutLayerNormUnit + kLutAxiAndControl;
  report.used.ff = kFfPerPe * report.total_pes +
                   kFfPerBank * report.total_banks +
                   kFfSoftmaxPerHead * p.max_heads +
                   2 * kFfLayerNormUnit + kFfAxiAndControl;
  return report;
}

uint32_t max_heads_fitting(SynthParams params, const Device& device) {
  uint32_t best = 0;
  for (uint32_t h = 1; h <= 64; ++h) {
    if (params.max_d_model % h != 0) continue;
    SynthParams candidate = params;
    candidate.max_heads = h;
    const ResourceReport report = estimate_resources(candidate);
    // Routability margin: the paper stops at 8 heads "to avoid
    // overutilization" even though more heads nominally fit.
    if (report.fits_routable(device.budget)) best = h;
  }
  return best;
}

}  // namespace protea::hw
