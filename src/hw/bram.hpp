// On-chip memory model: BRAM/LUTRAM banks produced by HLS array
// partitioning.
//
// ProTEA stores tile buffers in "multiple BRAMs/LUTRAMs to support parallel
// access" (§IV-A): an array feeding T parallel DSPs must be cyclically
// partitioned into at least ceil(T / ports) banks, because a BRAM36 has two
// ports. This model captures bank math (counts, capacity, BRAM-vs-LUTRAM
// choice) for the resource model, and provides a functional banked buffer
// whose access checker verifies the simulator never exceeds per-bank port
// limits within one "cycle" of accesses — the invariant HLS partitioning
// exists to guarantee.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace protea::hw {

/// One BRAM36 stores 36 Kbit = 4608 bytes (at byte-wide aspect ratios).
inline constexpr uint64_t kBram36Bytes = 4608;
/// Below this many bytes HLS maps a bank to distributed LUTRAM instead.
inline constexpr uint64_t kLutramThresholdBytes = 1024;
/// Dual-port block RAM: two accesses per cycle per bank.
inline constexpr uint32_t kBramPorts = 2;

struct BankingPlan {
  uint64_t banks = 0;           // number of physical banks
  uint64_t bytes_per_bank = 0;  // capacity needed per bank
  uint64_t bram36_count = 0;    // banks mapped to BRAM36 (0 if LUTRAM)
  bool uses_lutram = false;     // true when banks are below the threshold
  uint64_t lutram_bytes = 0;    // total bytes held in LUTRAM
};

/// Computes the banking HLS would generate for an array of
/// `total_bytes` that must sustain `parallel_reads` reads per cycle.
BankingPlan plan_banking(uint64_t total_bytes, uint32_t parallel_reads);

/// Functional banked byte buffer with a per-cycle port-conflict checker.
class BankedBuffer {
 public:
  /// `words` elements of `word_bytes` each, cyclically partitioned into
  /// `banks` banks (element i lives in bank i % banks).
  BankedBuffer(uint64_t words, uint32_t word_bytes, uint64_t banks);

  uint64_t words() const { return words_; }
  uint64_t banks() const { return banks_; }

  /// Begins a new access cycle: clears per-bank port counters.
  void begin_cycle();

  /// Records an access to element `index`; throws std::runtime_error when
  /// the containing bank would exceed its two ports this cycle.
  void access(uint64_t index);

  /// Total accesses recorded since construction.
  uint64_t total_accesses() const { return total_accesses_; }

  /// Peak ports used on any bank in any cycle so far.
  uint32_t peak_ports() const { return peak_ports_; }

 private:
  uint64_t words_;
  uint64_t banks_;
  std::vector<uint32_t> ports_this_cycle_;
  uint64_t total_accesses_ = 0;
  uint32_t peak_ports_ = 0;
};

}  // namespace protea::hw
