// Achieved-frequency and initiation-interval model (paper Fig. 7).
//
// Two HLS/implementation effects limit ProTEA's clock and throughput as a
// function of tile size:
//
//  1. *Initiation interval.* An engine sustaining II=1 must read all its
//     operands every cycle. Array partitioning can feed at most
//     ~kMaxParallelReadsII1 parallel on-chip reads per engine before port
//     multiplexing forces II=2, 3, ... (this is why the paper finds
//     TS_MHA=64 / TS_FFN=128 "optimal for HLS": QKV reads 4*TS_MHA = 256
//     and FFN reads 2*TS_FFN = 256 operands/cycle — exactly the limit).
//
//  2. *Routing congestion.* Larger unrolls spread a PE array across more
//     columns of the die and deepen the accumulation network, lowering
//     Fmax; very small tiles instead multiply the number of tiny banks and
//     the address-mux depth. The penalty slopes below are fitted so the
//     optimum of Fig. 7 lands at 12 MHA tiles / 6 FFN tiles = 200 MHz.
#pragma once

#include <cstdint>

#include "hw/synth_params.hpp"

namespace protea::hw {

/// Maximum parallel on-chip reads one engine can sustain at II=1.
inline constexpr uint32_t kMaxParallelReadsII1 = 256;

/// Initiation interval HLS achieves for an engine demanding
/// `parallel_reads` operands per cycle.
constexpr uint32_t achieved_ii(uint32_t parallel_reads) {
  if (parallel_reads == 0) return 1;
  return (parallel_reads + kMaxParallelReadsII1 - 1) / kMaxParallelReadsII1;
}

struct FrequencyBreakdown {
  double base_mhz = 200.0;
  double mha_penalty = 0.0;
  double ffn_penalty = 0.0;
  double fmax_mhz = 200.0;
};

/// Fmax for a synthesis configuration. Peaks at exactly 200 MHz for the
/// paper's TS_MHA=64 / TS_FFN=128 point; floor-clamped at 60 MHz.
FrequencyBreakdown frequency_model(const SynthParams& params);

/// Convenience accessor.
double fmax_mhz(const SynthParams& params);

}  // namespace protea::hw
