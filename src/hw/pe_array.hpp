// Processing-element array: a bank of DSP48 accumulators plus utilization
// accounting.
//
// Every ProTEA computation engine is "an array of processing elements
// where each PE includes a DSP48" (§IV-A). The engines drive this array
// functionally; the issued-MAC counter divided by (PEs x busy cycles)
// yields the DSP utilization the paper maximizes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "numeric/dsp48.hpp"

namespace protea::hw {

class PeArray {
 public:
  explicit PeArray(size_t num_pes) : pes_(num_pes) {
    if (num_pes == 0) throw std::invalid_argument("PeArray: zero PEs");
  }

  size_t size() const { return pes_.size(); }

  /// Clears accumulator `i` for a new reduction.
  void reset(size_t i) { at(i).reset(); }

  /// Clears all accumulators.
  void reset_all() {
    for (auto& pe : pes_) pe.reset();
  }

  /// Issues a MAC on PE `i`; counts it for utilization.
  void mac(size_t i, int32_t a, int32_t b) {
    if (!at(i).mac(a, b)) overflow_count_ += 1;
    ++macs_issued_;
  }

  int64_t value(size_t i) const { return pes_.at(i).value(); }
  void load(size_t i, int64_t v) { at(i).load(v); }

  uint64_t macs_issued() const { return macs_issued_; }
  uint64_t overflow_count() const { return overflow_count_; }

  /// Fraction of MAC slots used over `busy_cycles` cycles (0..1).
  double utilization(uint64_t busy_cycles) const {
    if (busy_cycles == 0) return 0.0;
    return static_cast<double>(macs_issued_) /
           (static_cast<double>(pes_.size()) *
            static_cast<double>(busy_cycles));
  }

 private:
  numeric::Dsp48Accumulator& at(size_t i) {
    if (i >= pes_.size()) throw std::out_of_range("PeArray: PE index");
    return pes_[i];
  }

  std::vector<numeric::Dsp48Accumulator> pes_;
  uint64_t macs_issued_ = 0;
  uint64_t overflow_count_ = 0;
};

}  // namespace protea::hw
