// High-bandwidth-memory model (the U55C's 16 GB HBM2 stack).
//
// HBM exposes independent pseudo-channels; a kernel binds each AXI master
// to one channel. Effective load cycles for a tile are the max over the
// channels involved of each channel's AXI burst time, degraded by a
// channel-efficiency factor (row activation, refresh).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/axi.hpp"
#include "hw/clock.hpp"

namespace protea::hw {

struct HbmConfig {
  uint32_t channels = 32;
  double efficiency = 0.85;  // achievable fraction of peak per channel
  AxiConfig axi = {};
};

class HbmModel {
 public:
  explicit HbmModel(HbmConfig config = {});

  const HbmConfig& config() const { return config_; }

  /// Cycles (at kernel clock) to load `bytes` striped evenly over
  /// `channels_used` channels. Channels beyond the configured count throw.
  Cycles load_cycles(uint64_t bytes, uint32_t channels_used) const;

  /// Cycles for a set of concurrent per-channel transfers
  /// (one entry = bytes moved on that channel); returns the slowest.
  Cycles concurrent_load_cycles(const std::vector<uint64_t>& per_channel) const;

  /// Sustained bandwidth in bytes/cycle for `channels_used` channels.
  double bytes_per_cycle(uint32_t channels_used) const;

 private:
  HbmConfig config_;
  AxiMaster axi_;
};

}  // namespace protea::hw
