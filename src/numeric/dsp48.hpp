// Behavioural model of the Xilinx DSP48E2 slice as used by ProTEA's PEs.
//
// Each ProTEA processing element maps one multiply-accumulate onto a DSP48:
// the 27x18 signed multiplier takes the int8 activation and weight, and the
// 48-bit post-adder accumulates partial sums across tiles. This model keeps
// the accumulator in an int64 clamped to the 48-bit two's-complement range,
// so overflow behaviour matches the silicon (saturation is NOT free in the
// DSP48 — real designs size accumulators to avoid it; we detect it).
#pragma once

#include <cstdint>

namespace protea::numeric {

class Dsp48Accumulator {
 public:
  static constexpr int64_t kAccMax = (int64_t{1} << 47) - 1;
  static constexpr int64_t kAccMin = -(int64_t{1} << 47);

  constexpr Dsp48Accumulator() = default;

  /// P += A*B. Returns false (and clamps) when the 48-bit accumulator
  /// would overflow — callers treat that as a design error.
  constexpr bool mac(int32_t a, int32_t b) {
    const int64_t prod = int64_t{a} * int64_t{b};
    int64_t next = acc_ + prod;
    if (next > kAccMax) {
      acc_ = kAccMax;
      overflowed_ = true;
      return false;
    }
    if (next < kAccMin) {
      acc_ = kAccMin;
      overflowed_ = true;
      return false;
    }
    acc_ = next;
    return true;
  }

  constexpr void reset() {
    acc_ = 0;
    overflowed_ = false;
  }

  constexpr void load(int64_t value) { acc_ = value; }

  constexpr int64_t value() const { return acc_; }
  constexpr bool overflowed() const { return overflowed_; }

 private:
  int64_t acc_ = 0;
  bool overflowed_ = false;
};

/// Static capacity check used by tests and the resource model: the deepest
/// ProTEA reduction is SL_max * |int8*int8| products; with SL_max=512 the
/// worst-case magnitude 512*128*128 = 2^23 fits 48 bits with huge margin.
constexpr bool accumulation_fits_dsp48(int64_t depth, int64_t max_product) {
  return depth * max_product <= Dsp48Accumulator::kAccMax;
}

}  // namespace protea::numeric
