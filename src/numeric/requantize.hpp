// Integer requantization of wide accumulators back to narrow activations.
//
// After a tile reduction, ProTEA's datapath must narrow the DSP48
// accumulator (scale s_x * s_w) to the activation format (scale s_y). With
// power-of-two scales this is a pure arithmetic shift; with free scales it
// is the standard fixed-point multiplier: y = (acc * M) >> shift with M a
// Q31 multiplier — the same scheme used by production int8 inference
// kernels, implementable with one extra DSP and a shifter.
#pragma once

#include <cstdint>

namespace protea::numeric {

struct RequantParams {
  int32_t multiplier = 1 << 30;  // Q31 fixed-point multiplier in [2^30, 2^31)
  int shift = 31;                // total right shift applied after multiply
};

/// Decomposes a positive real ratio (s_x*s_w/s_y) into multiplier/shift.
RequantParams make_requant_params(double real_ratio);

/// acc * multiplier / 2^shift with round-half-away-from-zero, then
/// saturation into [qmin, qmax]. Matches ARM/gemmlowp reference semantics.
int32_t requantize(int64_t acc, RequantParams params, int32_t qmin,
                   int32_t qmax);

/// Pure power-of-two variant: acc >> shift with round-half-to-even and
/// saturation; negative shift means a left shift.
int32_t requantize_pow2(int64_t acc, int shift, int32_t qmin, int32_t qmax);

}  // namespace protea::numeric
