#include "numeric/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protea::numeric {
namespace {

// Round half to even, matching Fixed<> and the HLS AP_RND_CONV mode.
int64_t round_half_even(double x) {
  const double fl = std::floor(x);
  const double frac = x - fl;
  if (frac > 0.5) return static_cast<int64_t>(fl) + 1;
  if (frac < 0.5) return static_cast<int64_t>(fl);
  const auto f = static_cast<int64_t>(fl);
  return (f % 2 == 0) ? f : f + 1;
}

}  // namespace

Quantizer::Quantizer(int bits, bool pow2_scale)
    : bits_(bits), pow2_scale_(pow2_scale) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("Quantizer: bits must be in [2, 16]");
  }
  qmax_ = (int32_t{1} << (bits - 1)) - 1;
  qmin_ = -(int32_t{1} << (bits - 1));
}

double Quantizer::calibrate(std::span<const float> data) {
  float max_abs = 0.0f;
  for (float x : data) max_abs = std::max(max_abs, std::abs(x));
  if (max_abs == 0.0f) max_abs = 1.0f;
  double scale = static_cast<double>(max_abs) / static_cast<double>(qmax_);
  if (pow2_scale_) {
    // Round the scale up to the next power of two so no value saturates.
    scale = std::exp2(std::ceil(std::log2(scale)));
  }
  scale_ = scale;
  return scale_;
}

void Quantizer::set_scale(double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("Quantizer: scale must be positive");
  }
  scale_ = scale;
}

int32_t Quantizer::quantize_one(float x) const {
  const int64_t q = round_half_even(static_cast<double>(x) / scale_);
  return static_cast<int32_t>(
      std::clamp<int64_t>(q, qmin_, qmax_));
}

void Quantizer::quantize(std::span<const float> in,
                         std::span<int8_t> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("Quantizer: size mismatch");
  }
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = static_cast<int8_t>(quantize_one(in[i]));
  }
}

void Quantizer::quantize(std::span<const float> in,
                         std::span<int16_t> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("Quantizer: size mismatch");
  }
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = static_cast<int16_t>(quantize_one(in[i]));
  }
}

float Quantizer::dequantize_one(int32_t q) const {
  return static_cast<float>(static_cast<double>(q) * scale_);
}

void Quantizer::dequantize(std::span<const int8_t> in,
                           std::span<float> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("Quantizer: size mismatch");
  }
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = dequantize_one(in[i]);
  }
}

QuantStats Quantizer::measure(std::span<const float> data) const {
  QuantStats stats;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  for (float x : data) {
    const int32_t q = quantize_one(x);
    if (q == qmax_ || q == qmin_) ++stats.saturated_count;
    const double err = static_cast<double>(x) - dequantize_one(q);
    const double abs_err = std::abs(err);
    stats.max_abs_error = std::max(stats.max_abs_error, abs_err);
    sum_abs += abs_err;
    sum_sq += err * err;
  }
  if (!data.empty()) {
    const auto n = static_cast<double>(data.size());
    stats.mean_abs_error = sum_abs / n;
    stats.rms_error = std::sqrt(sum_sq / n);
  }
  return stats;
}

}  // namespace protea::numeric
