// Saturating fixed-point arithmetic mirroring Vitis HLS `ap_fixed`.
//
// ProTEA quantizes activations and weights to an 8-bit fixed-point format
// (Table I: "8bit fixed"). This header provides the compile-time template
// `Fixed<W, F>` — W total bits including sign, F fractional bits — with
// saturation on overflow and configurable rounding, the semantics HLS
// synthesizes for `ap_fixed<W, W-F, AP_RND_CONV, AP_SAT>`.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace protea::numeric {

enum class Rounding {
  kTruncate,       // AP_TRN: drop fraction bits (round toward -inf)
  kNearestEven,    // AP_RND_CONV: round half to even (convergent)
  kNearestAway,    // AP_RND: round half away from zero
};

namespace detail {

/// Shifts right by `shift` applying the requested rounding to the bits
/// shifted out. `shift` may be zero.
constexpr int64_t shift_right_rounded(int64_t value, int shift,
                                      Rounding mode) {
  if (shift <= 0) return value << -shift;
  const int64_t floor_part = value >> shift;
  if (mode == Rounding::kTruncate) return floor_part;
  const int64_t frac_mask = (int64_t{1} << shift) - 1;
  const int64_t frac = value & frac_mask;
  const int64_t half = int64_t{1} << (shift - 1);
  if (frac > half) return floor_part + 1;
  if (frac < half) return floor_part;
  // Exactly half.
  if (mode == Rounding::kNearestAway) {
    return value >= 0 ? floor_part + 1 : floor_part;
  }
  // kNearestEven: round to the even neighbour.
  return (floor_part & 1) != 0 ? floor_part + 1 : floor_part;
}

}  // namespace detail

/// Fixed<W, F>: signed two's-complement fixed point, saturating.
///   W: total width in bits (2..32), F: fraction bits (0..W-1).
/// Value represented = raw / 2^F.
template <int W, int F, Rounding R = Rounding::kNearestEven>
class Fixed {
  static_assert(W >= 2 && W <= 32, "width must be in [2, 32]");
  static_assert(F >= 0 && F < W, "fraction bits must be in [0, W)");

 public:
  using raw_type = int32_t;

  static constexpr int width = W;
  static constexpr int fraction_bits = F;
  static constexpr raw_type raw_max = (raw_type{1} << (W - 1)) - 1;
  static constexpr raw_type raw_min = -(raw_type{1} << (W - 1));

  constexpr Fixed() = default;

  /// Quantizes a double with rounding mode R and saturation.
  static constexpr Fixed from_double(double v) {
    const double scaled = v * static_cast<double>(int64_t{1} << F);
    // Round according to R on the already-scaled value.
    double rounded = 0.0;
    if constexpr (R == Rounding::kTruncate) {
      rounded = std::floor(scaled);
    } else if constexpr (R == Rounding::kNearestAway) {
      rounded = scaled >= 0 ? std::floor(scaled + 0.5)
                            : std::ceil(scaled - 0.5);
    } else {
      const double fl = std::floor(scaled);
      const double frac = scaled - fl;
      if (frac > 0.5) {
        rounded = fl + 1;
      } else if (frac < 0.5) {
        rounded = fl;
      } else {
        rounded = (static_cast<int64_t>(fl) % 2 == 0) ? fl : fl + 1;
      }
    }
    return from_raw_saturated(static_cast<int64_t>(rounded));
  }

  static constexpr Fixed from_raw(raw_type raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Builds from a wide intermediate, saturating into range.
  static constexpr Fixed from_raw_saturated(int64_t raw) {
    Fixed f;
    if (raw > raw_max) {
      f.raw_ = raw_max;
    } else if (raw < raw_min) {
      f.raw_ = raw_min;
    } else {
      f.raw_ = static_cast<raw_type>(raw);
    }
    return f;
  }

  constexpr raw_type raw() const { return raw_; }

  constexpr double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(int64_t{1} << F);
  }

  static constexpr double max_value() {
    return static_cast<double>(raw_max) / static_cast<double>(int64_t{1} << F);
  }
  static constexpr double min_value() {
    return static_cast<double>(raw_min) / static_cast<double>(int64_t{1} << F);
  }
  /// Smallest representable step (1 ulp).
  static constexpr double epsilon() {
    return 1.0 / static_cast<double>(int64_t{1} << F);
  }

  constexpr Fixed operator+(Fixed other) const {
    return from_raw_saturated(int64_t{raw_} + other.raw_);
  }
  constexpr Fixed operator-(Fixed other) const {
    return from_raw_saturated(int64_t{raw_} - other.raw_);
  }
  constexpr Fixed operator-() const {
    return from_raw_saturated(-int64_t{raw_});
  }
  /// Full-precision product re-rounded back into the format.
  constexpr Fixed operator*(Fixed other) const {
    const int64_t prod = int64_t{raw_} * other.raw_;  // scale 2^(2F)
    return from_raw_saturated(detail::shift_right_rounded(prod, F, R));
  }

  constexpr auto operator<=>(const Fixed&) const = default;

 private:
  raw_type raw_ = 0;
};

/// The paper's data format: 8-bit fixed with 5 fraction bits, i.e. range
/// [-4, 3.969] with 1/32 resolution — wide enough for layer-normalized
/// activations, which concentrate in [-3, 3].
using Fix8 = Fixed<8, 5>;

/// 16-bit variant used by the quantization-width ablation.
using Fix16 = Fixed<16, 10>;

}  // namespace protea::numeric
