// Runtime symmetric per-tensor quantization (float <-> int8/int16).
//
// ProTEA's host flow extracts float weights from a trained model and
// quantizes them to the accelerator's fixed-point format. This class is the
// software half of that flow: it picks a power-of-two or free scale, maps
// floats to saturated integers, and reports reconstruction error so the
// accuracy ablation can sweep bit-widths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace protea::numeric {

struct QuantStats {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double rms_error = 0.0;
  int64_t saturated_count = 0;
};

class Quantizer {
 public:
  /// `bits` in [2, 16]; `pow2_scale` restricts the scale to a power of two
  /// (what a pure fixed-point datapath without rescaling multipliers needs).
  explicit Quantizer(int bits = 8, bool pow2_scale = true);

  int bits() const { return bits_; }
  int32_t qmax() const { return qmax_; }
  int32_t qmin() const { return qmin_; }

  /// Chooses the scale from the data's max |x| and returns it.
  /// Scale is defined so q = round(x / scale), x' = q * scale.
  double calibrate(std::span<const float> data);

  /// Uses a caller-provided scale (e.g. shared between tensors).
  void set_scale(double scale);
  double scale() const { return scale_; }

  /// Quantizes to saturated integers with round-half-to-even.
  int32_t quantize_one(float x) const;
  void quantize(std::span<const float> in, std::span<int8_t> out) const;
  void quantize(std::span<const float> in, std::span<int16_t> out) const;

  float dequantize_one(int32_t q) const;
  void dequantize(std::span<const int8_t> in, std::span<float> out) const;

  /// Round-trip error statistics for a tensor under the current scale.
  QuantStats measure(std::span<const float> data) const;

 private:
  int bits_;
  bool pow2_scale_;
  int32_t qmax_;
  int32_t qmin_;
  double scale_ = 1.0;
};

}  // namespace protea::numeric
