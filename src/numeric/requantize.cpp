#include "numeric/requantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protea::numeric {

RequantParams make_requant_params(double real_ratio) {
  if (!(real_ratio > 0.0) || !std::isfinite(real_ratio)) {
    throw std::invalid_argument("make_requant_params: ratio must be > 0");
  }
  int exp = 0;
  const double mant = std::frexp(real_ratio, &exp);  // mant in [0.5, 1)
  auto multiplier =
      static_cast<int64_t>(std::llround(mant * (int64_t{1} << 31)));
  if (multiplier == (int64_t{1} << 31)) {  // rounding pushed mant to 1.0
    multiplier /= 2;
    ++exp;
  }
  RequantParams params;
  params.multiplier = static_cast<int32_t>(multiplier);
  params.shift = 31 - exp;
  return params;
}

int32_t requantize(int64_t acc, RequantParams params, int32_t qmin,
                   int32_t qmax) {
  // 64x32 -> 96-bit product handled via __int128 (the hardware uses a
  // single wide DSP cascade; bit-exactness is what matters here).
  const __int128 prod =
      static_cast<__int128>(acc) * static_cast<__int128>(params.multiplier);
  const int shift = params.shift;
  __int128 rounded;
  if (shift <= 0) {
    rounded = prod << -shift;
  } else {
    // Round half away from zero under a flooring arithmetic shift:
    // positive values add half; negative values add (half - 1) so that
    // exact multiples stay exact and .5 cases move away from zero.
    const __int128 half = static_cast<__int128>(1) << (shift - 1);
    rounded = (prod >= 0 ? prod + half : prod + half - 1) >> shift;
  }
  if (rounded > qmax) return qmax;
  if (rounded < qmin) return qmin;
  return static_cast<int32_t>(rounded);
}

int32_t requantize_pow2(int64_t acc, int shift, int32_t qmin, int32_t qmax) {
  int64_t value;
  if (shift <= 0) {
    value = acc << -shift;
  } else {
    const int64_t floor_part = acc >> shift;
    const int64_t frac = acc & ((int64_t{1} << shift) - 1);
    const int64_t half = int64_t{1} << (shift - 1);
    if (frac > half) {
      value = floor_part + 1;
    } else if (frac < half) {
      value = floor_part;
    } else {
      value = (floor_part & 1) != 0 ? floor_part + 1 : floor_part;
    }
  }
  return static_cast<int32_t>(std::clamp<int64_t>(value, qmin, qmax));
}

}  // namespace protea::numeric
