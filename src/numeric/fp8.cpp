#include "numeric/fp8.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace protea::numeric {
namespace {

/// Static parameters of one minifloat format. `q_max` is the largest
/// significand (in units of 2^(e - mant_bits)) that still encodes a
/// finite value at the top exponent — e4m3 gives its all-ones mantissa
/// slot to NaN, e5m2 and e2m1 keep the full mantissa range finite.
struct MiniFloat {
  int mant_bits;   // explicit mantissa bits
  int bias;        // exponent bias
  int e_max;       // top exponent field value (all ones)
  int q_max;       // max finite significand at e_max (see above)
  bool has_inf;    // e_max field encodes inf/NaN instead of finites
};

constexpr MiniFloat kE4M3{.mant_bits = 3, .bias = 7, .e_max = 15,
                          .q_max = 14, .has_inf = false};
constexpr MiniFloat kE5M2{.mant_bits = 2, .bias = 15, .e_max = 31,
                          .q_max = 7, .has_inf = true};
constexpr MiniFloat kE2M1{.mant_bits = 1, .bias = 1, .e_max = 3,
                          .q_max = 3, .has_inf = false};

/// Largest finite magnitude: q_max * 2^(e_top - mant_bits) where e_top
/// is the top exponent that still holds finites.
double max_finite(const MiniFloat& f) {
  const int e_top = (f.has_inf ? f.e_max - 1 : f.e_max) - f.bias;
  return std::ldexp(static_cast<double>(f.q_max), e_top - f.mant_bits);
}

/// Code of the largest finite value (sign bit clear).
uint8_t max_finite_code(const MiniFloat& f) {
  const int m = f.mant_bits;
  if (f.has_inf) {
    return static_cast<uint8_t>(((f.e_max - 1) << m) | ((1 << m) - 1));
  }
  return static_cast<uint8_t>((f.e_max << m) | (f.q_max - (1 << m)));
}

/// Shared RNE encoder. The input magnitude is quantized onto the grid
/// step 2^(e - mant_bits) of its binade (clamped to the subnormal
/// scale), with the tie broken toward an even significand; a round-up
/// past the binade bumps the exponent. Exact in double: the inputs are
/// floats and the grid steps are powers of two, so `scaled` and its
/// fractional part are computed without rounding error.
uint8_t encode_generic(float x, const MiniFloat& f, uint8_t nan_code_mag) {
  const int m = f.mant_bits;
  const uint8_t sign = std::signbit(x) ? 0x80u >> (f.mant_bits == 1 ? 4 : 0)
                                       : 0u;
  // fp4's sign bit sits at bit 3 of the nibble; fp8's at bit 7. The
  // shift trick above keeps one encoder for both widths.
  if (std::isnan(x)) {
    return static_cast<uint8_t>(sign | nan_code_mag);
  }
  const double a = std::fabs(static_cast<double>(x));
  if (a == 0.0) return sign;  // signed zero preserved
  const uint8_t sat = static_cast<uint8_t>(sign | max_finite_code(f));
  if (std::isinf(x)) return sat;  // saturation-on-overflow policy
  // Finite overflow is caught after rounding (below), so a value that
  // merely ROUNDS to max finite still lands there exactly.
  const int e_min = 1 - f.bias;  // minimum normal exponent
  int e = std::ilogb(a);
  if (e < e_min) e = e_min;  // subnormal range keeps the min-normal scale
  const double ulp = std::ldexp(1.0, e - m);
  const double scaled = a / ulp;  // exact: both are powers-of-two scaled
  double q = std::floor(scaled);
  const double frac = scaled - q;
  if (frac > 0.5 || (frac == 0.5 && std::fmod(q, 2.0) != 0.0)) {
    q += 1.0;
  }
  if (q >= static_cast<double>(2 << m)) {  // rounded up past the binade
    q /= 2.0;
    ++e;
  }
  const int e_top = (f.has_inf ? f.e_max - 1 : f.e_max) - f.bias;
  auto qi = static_cast<int>(q);
  if (e > e_top || (e == e_top && !f.has_inf && qi > f.q_max)) {
    return sat;
  }
  if (qi < (1 << m)) {  // subnormal (e == e_min by construction)
    return static_cast<uint8_t>(sign | qi);
  }
  const int exp_field = e + f.bias;
  return static_cast<uint8_t>(sign | (exp_field << m) | (qi - (1 << m)));
}

float decode_generic(uint8_t code, const MiniFloat& f, int sign_bit) {
  const int m = f.mant_bits;
  const bool neg = (code >> sign_bit) & 1;
  const int exp_field = (code >> m) & ((1 << (sign_bit - m)) - 1);
  const int mant = code & ((1 << m) - 1);
  double v;
  if (f.has_inf && exp_field == f.e_max) {
    if (mant != 0) return std::numeric_limits<float>::quiet_NaN();
    v = std::numeric_limits<double>::infinity();
  } else if (!f.has_inf && exp_field == f.e_max && f.q_max < (2 << m) - 1 &&
             mant == (1 << m) - 1) {
    // e4m3's all-ones slot: NaN, sign irrelevant to the payload.
    return std::numeric_limits<float>::quiet_NaN();
  } else if (exp_field == 0) {
    v = std::ldexp(static_cast<double>(mant), 1 - f.bias - m);
  } else {
    v = std::ldexp(static_cast<double>((1 << m) + mant),
                   exp_field - f.bias - m);
  }
  return static_cast<float>(neg ? -v : v);
}

/// int8 read-back of a decoded value: clamp(rne(v * scale)) into the
/// full int8 range. NaN codes read 0 (never produced by the codec's own
/// encode — a total-function backstop for foreign bytes).
int8_t to_int8(float v, double scale) {
  if (std::isnan(v)) return 0;
  const double scaled = static_cast<double>(v) * scale;
  if (scaled >= 127.0) return 127;
  if (scaled <= -128.0) return -128;
  const double r = std::nearbyint(scaled);  // FE_TONEAREST = ties-to-even
  return static_cast<int8_t>(r);
}

KvCodec build_codec(KvStorage storage) {
  KvCodec c;
  c.storage = storage;
  switch (storage) {
    case KvStorage::kFp8E4M3:
    case KvStorage::kFp8E5M2: {
      const Fp8Format fmt = storage == KvStorage::kFp8E4M3
                                ? Fp8Format::kE4M3
                                : Fp8Format::kE5M2;
      for (int q = -128; q <= 127; ++q) {
        c.encode[q + 128] = fp8_encode(static_cast<float>(q), fmt);
      }
      for (int code = 0; code < 256; ++code) {
        c.decode[code] =
            to_int8(fp8_decode(static_cast<uint8_t>(code), fmt), 1.0);
      }
      break;
    }
    case KvStorage::kFp4E2M1: {
      // Scale 32 maps the e2m1 magnitudes {0,.5,1,1.5,2,3,4,6} onto the
      // int8 grid {0,16,32,48,64,96,192->sat}: power-of-two, so every
      // decoded level is an exact integer and the table is the whole
      // contract.
      for (int q = -128; q <= 127; ++q) {
        c.encode[q + 128] = fp4_encode(static_cast<float>(q) / 32.0f);
      }
      for (int code = 0; code < 16; ++code) {
        c.decode[code] =
            to_int8(fp4_decode(static_cast<uint8_t>(code)), 32.0);
      }
      break;
    }
    case KvStorage::kInt8:
      break;  // unreachable via kv_codec()
  }
  // Canonicalize zero: small negative values encode to -0, which reads
  // back 0 and would RE-encode as +0 — a byte-level instability under
  // gather -> re-scatter. Storing +0 for every value that rounds to
  // zero makes encode(decode(encode(q))) == encode(q) exhaustively.
  const uint8_t mag_mask = storage == KvStorage::kFp4E2M1 ? 0x07 : 0x7f;
  for (int i = 0; i < 256; ++i) {
    if ((c.encode[i] & mag_mask) == 0) c.encode[i] = 0;
  }
  for (int q = -128; q <= 127; ++q) {
    c.roundtrip[q + 128] = c.decode[c.encode[q + 128]];
  }
  return c;
}

}  // namespace

uint8_t fp8_encode(float x, Fp8Format fmt) {
  // Canonical NaN: sign | 0x7f — e4m3's only NaN slot, one of e5m2's.
  return fmt == Fp8Format::kE4M3 ? encode_generic(x, kE4M3, 0x7f)
                                 : encode_generic(x, kE5M2, 0x7f);
}

float fp8_decode(uint8_t code, Fp8Format fmt) {
  return fmt == Fp8Format::kE4M3 ? decode_generic(code, kE4M3, 7)
                                 : decode_generic(code, kE5M2, 7);
}

uint8_t fp4_encode(float x) {
  if (std::isnan(x)) return 0;  // e2m1 has no NaN: documented policy
  return encode_generic(x, kE2M1, 0);
}

float fp4_decode(uint8_t code) {
  return decode_generic(static_cast<uint8_t>(code & 0x0f), kE2M1, 3);
}

const char* kv_storage_name(KvStorage s) {
  switch (s) {
    case KvStorage::kInt8: return "int8";
    case KvStorage::kFp8E4M3: return "fp8_e4m3";
    case KvStorage::kFp8E5M2: return "fp8_e5m2";
    case KvStorage::kFp4E2M1: return "fp4_e2m1";
  }
  return "?";
}

const KvCodec* kv_codec(KvStorage storage) {
  if (storage == KvStorage::kInt8) return nullptr;
  static const KvCodec e4m3 = build_codec(KvStorage::kFp8E4M3);
  static const KvCodec e5m2 = build_codec(KvStorage::kFp8E5M2);
  static const KvCodec e2m1 = build_codec(KvStorage::kFp4E2M1);
  switch (storage) {
    case KvStorage::kFp8E4M3: return &e4m3;
    case KvStorage::kFp8E5M2: return &e5m2;
    case KvStorage::kFp4E2M1: return &e2m1;
    case KvStorage::kInt8: break;
  }
  return nullptr;
}

}  // namespace protea::numeric
