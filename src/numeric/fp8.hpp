// FP8 (e4m3 / e5m2) and FP4 (e2m1) conversion layer + the KV-storage
// codec built on it — ROADMAP item 3's numerics floor.
//
// Encoding contract (chosen up front, pinned exhaustively by
// tests/test_fp8.cpp against an independently computed table):
//
//   * e4m3 — OCP FP8 "FN" variant: 1 sign / 4 exponent (bias 7) /
//     3 mantissa. NO infinities; S.1111.111 is the only NaN per sign;
//     S.1111.110 = ±448 is the max finite. Encoding SATURATES on
//     overflow (±inf and any |x| that rounds past 448 map to ±448);
//     NaN input maps to the canonical NaN of its sign (0x7F / 0xFF).
//   * e5m2 — IEEE-754 binary8 style: 1 sign / 5 exponent (bias 15) /
//     2 mantissa. Exponent 31 with mantissa 0 is ±inf, nonzero mantissa
//     is NaN; max finite is ±57344. Encoding never emits inf: overflow
//     saturates to the max finite, NaN maps to the canonical NaN
//     (0x7F / 0xFF). Decoding reproduces ±inf/NaN faithfully.
//   * e2m1 — OCP FP4: 1 sign / 2 exponent (bias 1) / 1 mantissa. The
//     eight magnitudes are {0, 0.5, 1, 1.5, 2, 3, 4, 6}; no inf, no
//     NaN. Encoding saturates at ±6; NaN input maps to +0 (the format
//     cannot represent it — documented, pinned).
//
//   All conversions round to nearest, ties to EVEN mantissa, including
//   into and out of the subnormal range (exponent field 0 keeps the
//   minimum-normal scale with no implicit leading 1). Signed zero is
//   preserved. Every encode/decode is a pure table-free function of its
//   input — identical on every call, which is what makes FP8-stored KV
//   decode exactly reproducible.
//
// KV-storage codec: the paged KV cache stores int8-quantized rows. A
// non-int8 KvStorage re-encodes each stored int8 value q on write and
// decodes on every read through 256-entry tables derived from the
// conversions above:
//
//   encode[q+128] = fp_encode((float)q / scale)   (scale 1 for fp8,
//                                                  32 for fp4)
//   decode[code]  = clamp(rne(fp_decode(code) * scale), int8 range)
//
// decode∘encode is idempotent on the int8 grid (verified exhaustively),
// so a stored row reads back the same on every access and re-encoding a
// read-back row changes nothing — the reproducibility guarantee the
// paged==dense / COW / swap / prefix-adoption property suites pin.
// The fp8 formats keep 1 byte/element (byte-neutral storage; the win is
// the datapath + perf-model wiring); fp4 packs TWO elements per byte
// (low nibble = even element), which is the format that actually halves
// KV block bytes and doubles concurrent sequences at a fixed pool.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace protea::numeric {

enum class Fp8Format : uint8_t {
  kE4M3 = 0,  // OCP FN: no inf, one NaN per sign, max finite 448
  kE5M2 = 1,  // IEEE style: inf + NaN, max finite 57344
};

/// float -> fp8 byte with round-to-nearest-even, saturation on overflow
/// (never emits inf) and the NaN policy documented above.
uint8_t fp8_encode(float x, Fp8Format fmt);
/// fp8 byte -> exact float value (total: NaN/inf codes decode to
/// NaN/±inf for e5m2; the e4m3 NaN codes decode to NaN).
float fp8_decode(uint8_t code, Fp8Format fmt);

/// float -> fp4 e2m1 nibble (low 4 bits; high bits zero) with RNE,
/// saturation at ±6, NaN -> +0.
uint8_t fp4_encode(float x);
/// fp4 nibble -> exact float value (high bits of `code` ignored).
float fp4_decode(uint8_t code);

/// Self-K/V storage format of a KvBlockPool / KvCache (see
/// runtime/kv_cache.hpp). kInt8 is the bit-exact reference layout the
/// engines natively consume; the others re-encode on write and decode
/// on read through kv_codec().
enum class KvStorage : uint8_t {
  kInt8 = 0,
  kFp8E4M3 = 1,
  kFp8E5M2 = 2,
  kFp4E2M1 = 3,  // packed 2 elements/byte — halves KV block bytes
};

constexpr size_t kv_storage_bits(KvStorage s) {
  return s == KvStorage::kFp4E2M1 ? 4 : 8;
}

/// Stored bytes for `elems` cached elements (fp4 packs two per byte;
/// odd element counts round up).
constexpr size_t kv_storage_bytes(size_t elems, KvStorage s) {
  return s == KvStorage::kFp4E2M1 ? (elems + 1) / 2 : elems;
}

const char* kv_storage_name(KvStorage s);

/// Precomputed int8 <-> stored-code tables for one non-int8 storage
/// format. Immutable once built; safe to share across threads.
struct KvCodec {
  KvStorage storage = KvStorage::kInt8;
  /// Stored code for int8 value q, indexed by q + 128 (a full byte for
  /// the fp8 formats, a nibble 0..15 for fp4). Values that round to
  /// zero store canonical +0, so the stored byte is stable under
  /// decode -> re-encode (gather then re-scatter changes nothing).
  std::array<uint8_t, 256> encode{};
  /// int8 value a stored code reads back as: clamp(rne(value * scale))
  /// into [-128, 127]. fp8 indexes with the stored byte (NaN codes
  /// read 0, e5m2 ±inf read ±127/-128); fp4 indexes with the nibble
  /// (entries 16..255 are 0 and never addressed).
  std::array<int8_t, 256> decode{};
  /// roundtrip[q+128] = decode[encode[q+128]] — the dense-layout
  /// reference applied in place after a write, so dense and paged
  /// sequences see identical values.
  std::array<int8_t, 256> roundtrip{};
};

/// Codec for `storage`; nullptr for kInt8 (no conversion). The tables
/// are built once (thread-safe static init) and never mutated.
const KvCodec* kv_codec(KvStorage storage);

}  // namespace protea::numeric
