// Energy comparison: ProTEA's power/energy-per-inference against the
// published TDPs of the Table III platforms — the quantitative side of
// the paper's "efficient power consumption" motivation (§I).
//
// Platform energies use TDP x published latency (an upper bound that
// favors neither side consistently — documented limitation); ProTEA uses
// the resource-activity power model at the modeled clock.
#include <cstdio>

#include "baseline/published.hpp"
#include "bench_common.hpp"
#include "hw/power_model.hpp"
#include "ref/model_zoo.hpp"

int main() {
  using namespace protea;

  const accel::AccelConfig cfg;

  util::Table table({"TNN", "Platform", "Latency(ms)", "Power(W)",
                     "Energy/inf (mJ)", "ProTEA energy ratio"});
  table.set_title(
      "ENERGY — per-inference energy, ProTEA (modeled) vs platforms "
      "(TDP x published latency)");
  util::CsvWriter csv(bench::results_dir() + "/energy.csv",
                      {"model", "platform", "latency_ms", "power_w",
                       "energy_mj", "protea_ratio"});

  std::string current;
  for (const auto& row : baseline::table3_results()) {
    const auto model = ref::find_model(row.model_zoo_name);
    const auto report = accel::estimate_performance(cfg, model);
    const auto protea_energy = hw::estimate_energy(
        cfg.synth, report.fmax_mhz, report.dsp_utilization, 0.1,
        report.latency_ms, report.gops);

    if (row.model_id != current) {
      current = row.model_id;
      table.row({row.model_id, "ProTEA (modeled)",
                 bench::fmt(report.latency_ms, 3),
                 bench::fmt(protea_energy.power.total_w, 1),
                 bench::fmt(protea_energy.energy_mj, 1), "1 (base)"});
      csv.row({row.model_id, "protea", bench::fmt(report.latency_ms, 4),
               bench::fmt(protea_energy.power.total_w, 2),
               bench::fmt(protea_energy.energy_mj, 2), "1"});
    }

    const double tdp = hw::platform_tdp_watts(row.platform);
    const double platform_energy = tdp * row.latency_ms;
    const double ratio = platform_energy / protea_energy.energy_mj;
    table.row({row.model_id, row.platform, bench::fmt(row.latency_ms, 3),
               bench::fmt(tdp, 0), bench::fmt(platform_energy, 1),
               bench::fmt(ratio, 2) + "x"});
    csv.row({row.model_id, row.platform, bench::fmt(row.latency_ms, 4),
             bench::fmt(tdp, 0), bench::fmt(platform_energy, 2),
             bench::fmt(ratio, 3)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "A >1x ratio means the platform spends more energy per inference "
      "than ProTEA — the FPGA's\ncase even on rows where it loses on raw "
      "latency (Table III models #1/#3).\n");
  std::printf("CSV written to bench_results/energy.csv\n");
  return 0;
}
