// Extension bench (paper §VI future work): decoder-layer latency as a
// function of target and memory lengths, plus the autoregressive
// generation cost curve (cumulative latency to emit T tokens).
#include <cstdio>

#include "accel/decoder_accelerator.hpp"
#include "bench_common.hpp"
#include "ref/model_zoo.hpp"

int main() {
  using namespace protea;

  const accel::AccelConfig cfg;
  ref::ModelConfig model;
  model.name = "decoder-bert";
  model.seq_len = 128;   // max target length
  model.d_model = 768;
  model.num_heads = 8;
  model.num_layers = 6;
  model.activation = ref::Activation::kGelu;

  util::Table table({"Target len", "Memory len", "Latency (ms)", "GOPS",
                     "Self-attn share", "Cross-attn share", "FFN share"});
  table.set_title(
      "EXTENSION (paper SVI) — decoder latency vs target/memory length "
      "(d=768, h=8, N=6)");
  util::CsvWriter csv(bench::results_dir() + "/decoder_scaling.csv",
                      {"target_len", "memory_len", "latency_ms", "gops",
                       "self_cycles", "cross_cycles", "ffn_cycles"});

  for (uint32_t t_len : {16u, 32u, 64u, 128u}) {
    for (uint32_t s_len : {32u, 64u, 128u}) {
      const auto report =
          accel::estimate_decoder_performance(cfg, model, t_len, s_len);
      hw::Cycles self = 0, cross = 0, ffn = 0;
      for (const auto& stage : report.stages) {
        if (stage.name.rfind("self_", 0) == 0 &&
            stage.name != "self_proj") {
          self += stage.total;
        } else if (stage.name.rfind("cross_", 0) == 0 &&
                   stage.name != "cross_proj") {
          cross += stage.total;
        } else {
          ffn += stage.total;
        }
      }
      const auto pct = [&](hw::Cycles c) {
        return bench::fmt(100.0 * static_cast<double>(c) /
                              static_cast<double>(report.layer_cycles),
                          0) +
               "%";
      };
      table.row({std::to_string(t_len), std::to_string(s_len),
                 bench::fmt(report.latency_ms, 1),
                 bench::fmt(report.gops, 1), pct(self), pct(cross),
                 pct(ffn)});
      csv.row({std::to_string(t_len), std::to_string(s_len),
               bench::fmt(report.latency_ms, 3),
               bench::fmt(report.gops, 2), std::to_string(self),
               std::to_string(cross), std::to_string(ffn)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Autoregressive generation cost: decoding step t reruns the prefix.
  util::Table gen({"Tokens generated", "Cumulative latency (ms)"});
  gen.set_title("Greedy generation cost (memory len 64, no KV cache — "
                "the naive controller)");
  double cumulative = 0.0;
  for (uint32_t t = 1; t <= 32; ++t) {
    cumulative +=
        accel::estimate_decoder_performance(cfg, model, t, 64).latency_ms;
    if (t == 1 || t == 8 || t == 16 || t == 32) {
      gen.row({std::to_string(t), bench::fmt(cumulative, 1)});
    }
  }
  std::printf("%s\n", gen.to_string().c_str());
  std::printf(
      "The quadratic generation curve motivates a KV-cache controller as "
      "the natural next\nhardware extension beyond the paper.\n");
  std::printf("CSV written to bench_results/decoder_scaling.csv\n");
  return 0;
}
