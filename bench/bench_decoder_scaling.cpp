// Extension bench (paper §VI future work): decoder-layer latency as a
// function of target and memory lengths, plus the autoregressive
// generation cost curve — full-recompute (the naive controller reruns
// the whole prefix every step, O(T^2) total work) against the KV-cached
// generation engine (prefill + O(len) incremental steps, O(T) total).
// Emits BENCH_generation.json in the unified record schema, including an
// executed small-model comparison whose outputs are checked bit-identical.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/engines.hpp"
#include "accel/softmax_unit.hpp"
#include "bench_common.hpp"
#include "numeric/fp8.hpp"
#include "ref/decoder.hpp"
#include "ref/model_zoo.hpp"
#include "ref/weights.hpp"
#include "runtime/decode_policy.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/prefix_cache.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/workspace_arena.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

/// Greedy argmax against a random vocabulary head (stand-in for the
/// trained output projection).
uint32_t argmax_token(const protea::tensor::MatrixF& head,
                      std::span<const float> state) {
  uint32_t best = 0;
  double best_score = -1e300;
  for (uint32_t v = 0; v < head.rows(); ++v) {
    double score = 0.0;
    for (size_t c = 0; c < state.size(); ++c) {
      score += static_cast<double>(head(v, c)) * state[c];
    }
    if (score > best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace protea;

  // --ci marks the gated CI invocation (mirroring bench_traffic): the
  // workload is identical — same seeds, same bit-identity gates — and
  // small enough to run on every push; the flag only tags the output.
  // --trace <path> arms runtime telemetry on the executed scheduler mix
  // and writes its Chrome trace-event JSON there.
  bool ci = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--ci") ci = true;
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }

  runtime::Telemetry telemetry;  // unconfigured = inert
  if (!trace_path.empty()) {
#ifdef PROTEA_TELEMETRY
    telemetry.configure();
#else
    std::fprintf(
        stderr,
        "bench_decoder_scaling: --trace ignored (PROTEA_TELEMETRY off)\n");
    trace_path.clear();
#endif
  }

  const accel::AccelConfig cfg;
  ref::ModelConfig model;
  model.name = "decoder-bert";
  model.seq_len = 128;   // max target length
  model.d_model = 768;
  model.num_heads = 8;
  model.num_layers = 6;
  model.activation = ref::Activation::kGelu;

  std::vector<bench::BenchRecord> records;
  bool identical = true;  // executed cached-vs-full token cross-check

  util::Table table({"Target len", "Memory len", "Latency (ms)", "GOPS",
                     "Self-attn share", "Cross-attn share", "FFN share"});
  table.set_title(
      "EXTENSION (paper SVI) — decoder latency vs target/memory length "
      "(d=768, h=8, N=6)");
  util::CsvWriter csv(bench::results_dir() + "/decoder_scaling.csv",
                      {"target_len", "memory_len", "latency_ms", "gops",
                       "self_cycles", "cross_cycles", "ffn_cycles"});

  for (uint32_t t_len : {16u, 32u, 64u, 128u}) {
    for (uint32_t s_len : {32u, 64u, 128u}) {
      const auto report =
          accel::estimate_decoder_performance(cfg, model, t_len, s_len);
      hw::Cycles self = 0, cross = 0, ffn = 0;
      for (const auto& stage : report.stages) {
        if (stage.name.rfind("self_", 0) == 0 &&
            stage.name != "self_proj") {
          self += stage.total;
        } else if (stage.name.rfind("cross_", 0) == 0 &&
                   stage.name != "cross_proj") {
          cross += stage.total;
        } else {
          ffn += stage.total;
        }
      }
      const auto pct = [&](hw::Cycles c) {
        return bench::fmt(100.0 * static_cast<double>(c) /
                              static_cast<double>(report.layer_cycles),
                          0) +
               "%";
      };
      table.row({std::to_string(t_len), std::to_string(s_len),
                 bench::fmt(report.latency_ms, 1),
                 bench::fmt(report.gops, 1), pct(self), pct(cross),
                 pct(ffn)});
      csv.row({std::to_string(t_len), std::to_string(s_len),
               bench::fmt(report.latency_ms, 3),
               bench::fmt(report.gops, 2), std::to_string(self),
               std::to_string(cross), std::to_string(ffn)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // --- generation cost: full recompute vs KV cache (cycle model) -----------
  // Full recompute: step t reruns the whole t-row prefix (and reprojects
  // the memory's cross K/V). KV cache: one prefill plus one-row steps.
  util::Table gen({"Tokens", "Full recompute (ms)", "KV-cached (ms)",
                   "Speedup", "MAC ratio"});
  gen.set_title(
      "Greedy generation cost from BOS (memory len 64): naive "
      "full-recompute controller vs KV-cached engine");
  const uint32_t mem_len = 64;
  for (uint32_t total : {8u, 16u, 32u, 64u, 128u}) {
    double full_ms = 0.0;
    uint64_t full_macs = 0;
    for (uint32_t t = 1; t <= total; ++t) {
      const auto step =
          accel::estimate_decoder_performance(cfg, model, t, mem_len);
      full_ms += step.latency_ms;
      full_macs += step.macs;
    }
    const auto cached = accel::estimate_generation_performance(
        cfg, model, /*prefill_len=*/1, total, mem_len);
    const double speedup = full_ms / cached.latency_ms;
    const double mac_ratio = static_cast<double>(full_macs) /
                             static_cast<double>(cached.macs);
    gen.row({std::to_string(total), bench::fmt(full_ms, 1),
             bench::fmt(cached.latency_ms, 1), bench::fmt(speedup, 2),
             bench::fmt(mac_ratio, 2)});
    const std::string name =
        "gen_T" + std::to_string(total) + "_S" + std::to_string(mem_len);
    records.push_back({name, "full_recompute_ms", full_ms, "ms"});
    records.push_back({name, "kv_cached_ms", cached.latency_ms, "ms"});
    records.push_back({name, "model_speedup", speedup, "x"});
    records.push_back({name, "mac_ratio", mac_ratio, "x"});
  }
  std::printf("%s\n", gen.to_string().c_str());

  // --- executed comparison (small model, wall clock + bit-identity) --------
  {
    constexpr uint32_t kVocab = 64;
    ref::ModelConfig small;
    small.name = "decoder-small";
    small.seq_len = 32;
    small.d_model = 128;
    small.num_heads = 4;
    small.num_layers = 2;
    small.activation = ref::Activation::kRelu;

    const auto weights = ref::make_random_decoder_weights(small, 11);
    tensor::MatrixF memory(16, small.d_model);
    tensor::MatrixF calib(small.seq_len, small.d_model);
    util::Xoshiro256 rng(12);
    for (float& x : memory.flat()) {
      x = static_cast<float>(rng.normal());
    }
    for (float& x : calib.flat()) {
      x = static_cast<float>(rng.normal());
    }
    tensor::MatrixF vocab_head(kVocab, small.d_model);
    for (float& x : vocab_head.flat()) {
      x = static_cast<float>(rng.normal());
    }
    tensor::MatrixF embed(kVocab, small.d_model);
    for (float& x : embed.flat()) {
      x = static_cast<float>(rng.normal() * 0.5);
    }
    const auto embed_rows = [&](const std::vector<uint32_t>& tokens) {
      tensor::MatrixF m(tokens.size(), small.d_model);
      for (size_t r = 0; r < tokens.size(); ++r) {
        for (size_t c = 0; c < small.d_model; ++c) {
          m(r, c) = embed(tokens[r], c);
        }
      }
      return m;
    };

    accel::AccelConfig hw_cfg;
    accel::ProteaDecoderAccelerator dec(hw_cfg);
    dec.load_model(accel::prepare_decoder(weights, calib, memory));

    const uint32_t steps = small.seq_len - 1;
    // Full-recompute greedy decode.
    std::vector<uint32_t> full_tokens = {0};
    util::Stopwatch full_watch;
    for (uint32_t t = 0; t < steps; ++t) {
      const auto states = dec.forward(embed_rows(full_tokens), memory);
      full_tokens.push_back(
          argmax_token(vocab_head, states.row(states.rows() - 1)));
    }
    const double full_ms = full_watch.milliseconds();

    // KV-cached greedy decode (prefill BOS, then one row per step). A
    // throwaway prefill first, so the one-time session construction +
    // arena warmup isn't charged to the timed steady-state path.
    std::vector<uint32_t> cached_tokens = {0};
    (void)dec.prefill(embed_rows(cached_tokens), memory);
    util::Stopwatch cached_watch;
    auto states = dec.prefill(embed_rows(cached_tokens), memory);
    cached_tokens.push_back(
        argmax_token(vocab_head, states.row(states.rows() - 1)));
    for (uint32_t t = 1; t < steps; ++t) {
      const auto state =
          dec.decode_step(embed_rows({cached_tokens.back()}));
      cached_tokens.push_back(argmax_token(vocab_head, state.row(0)));
    }
    const double cached_ms = cached_watch.milliseconds();

    identical = full_tokens == cached_tokens;
    std::printf(
        "executed greedy decode, %u steps (d=%u, N=%u): "
        "full recompute %.2f ms, KV-cached %.2f ms (%.2fx), tokens %s\n\n",
        steps, small.d_model, small.num_layers, full_ms, cached_ms,
        full_ms / cached_ms, identical ? "IDENTICAL" : "DIVERGED");
    records.push_back(
        {"exec_T31_d128", "full_recompute_ms", full_ms, "ms"});
    records.push_back({"exec_T31_d128", "kv_cached_ms", cached_ms, "ms"});
    records.push_back(
        {"exec_T31_d128", "wall_speedup", full_ms / cached_ms, "x"});
    records.push_back({"exec_T31_d128", "outputs_bit_identical",
                       identical ? 1.0 : 0.0, "bool"});
  }

  // --- paged KV: footprint model + executed max concurrency ----------------
  // Dense self-K/V reserves the full programmed capacity per slot; the
  // paged layout holds ceil(rows / block_rows) blocks per sequence. For
  // short-sequence mixes the ratio is the extra concurrency a shared
  // block pool admits at equal arena footprint.
  {
    util::Table kv({"Cached rows", "Dense self-KV (KiB)",
                    "Paged self-KV (KiB)", "Footprint ratio"});
    kv.set_title(
        "Self-KV footprint per sequence (d=768, N=6, capacity 128, "
        "16-row blocks): dense slot reservation vs paged blocks");
    const uint32_t kv_block_rows = 16;
    for (uint32_t rows : {8u, 16u, 32u, 64u, 128u}) {
      const auto fp =
          accel::estimate_kv_footprint(model, rows, kv_block_rows);
      const double ratio = static_cast<double>(fp.dense_bytes) /
                           static_cast<double>(fp.paged_bytes);
      kv.row({std::to_string(rows),
              bench::fmt(static_cast<double>(fp.dense_bytes) / 1024.0, 1),
              bench::fmt(static_cast<double>(fp.paged_bytes) / 1024.0, 1),
              bench::fmt(ratio, 2)});
      const std::string name = "kv_footprint_rows" + std::to_string(rows);
      records.push_back({name, "dense_self_bytes",
                         static_cast<double>(fp.dense_bytes), "B"});
      records.push_back({name, "paged_self_bytes",
                         static_cast<double>(fp.paged_bytes), "B"});
      records.push_back({name, "footprint_ratio", ratio, "x"});
    }
    std::printf("%s\n", kv.to_string().c_str());
  }

  // Executed: a short-sequence mix served dense (4 full-capacity slots)
  // and paged (one shared pool of the SAME self-KV byte budget). The
  // scheduler's peak concurrency is the record; outputs must stay bit
  // identical between the two layouts.
  {
    ref::ModelConfig small;
    small.name = "decoder-paged";
    small.seq_len = 32;
    small.d_model = 128;
    small.num_heads = 4;
    small.num_layers = 2;
    small.activation = ref::Activation::kRelu;
    const auto weights = ref::make_random_decoder_weights(small, 21);
    tensor::MatrixF memory(8, small.d_model);
    tensor::MatrixF calib(small.seq_len, small.d_model);
    util::Xoshiro256 rng(22);
    for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
    for (float& x : calib.flat()) x = static_cast<float>(rng.normal());

    runtime::GenerationScheduler scheduler(
        accel::AccelConfig{}, accel::prepare_decoder(weights, calib, memory));
    std::vector<runtime::GenerationRequest> requests;
    for (size_t i = 0; i < 48; ++i) {  // short mix: 4 rows per sequence
      runtime::GenerationRequest req;
      req.prefix = tensor::MatrixF(2, small.d_model);
      for (float& x : req.prefix.flat()) {
        x = static_cast<float>(rng.normal());
      }
      req.memory = &memory;
      req.max_new_tokens = 2;
      const uint32_t d = small.d_model;
      req.next_token = [d](std::span<const float> state,
                           tensor::MatrixF& next) {
        if (next.rows() != 1 || next.cols() != d) {
          next = tensor::MatrixF(1, d);
        }
        for (size_t c = 0; c < d; ++c) next(0, c) = 0.5f * state[c];
        return true;
      };
      requests.push_back(std::move(req));
    }

    runtime::GenerationSchedulerOptions dense;
    dense.slots = 4;
    dense.kv_block_rows = 0;  // full-capacity reservation per slot
    const auto dense_results = scheduler.run(requests, dense);
    const auto dense_stats = scheduler.last_run();
    const uint64_t dense_bytes =
        accel::estimate_kv_footprint(small, small.seq_len, 4).dense_bytes *
        dense.slots;

    runtime::GenerationSchedulerOptions paged;
    paged.kv_block_rows = 4;
    // Equal self-KV budget: (4 slots x 32 rows) / 4-row blocks.
    paged.kv_pool_blocks = dense.slots * small.seq_len / paged.kv_block_rows;
    paged.slots = paged.kv_pool_blocks;  // let the pool be the limiter
    paged.telemetry = &telemetry;  // inert unless --trace configured it
    const auto paged_results = scheduler.run(requests, paged);
    const auto paged_stats = scheduler.last_run();
    const uint64_t paged_bytes =
        uint64_t{paged.kv_pool_blocks} * paged.kv_block_rows *
        accel::estimate_kv_footprint(small, 1, 1).row_bytes;

    bool paged_identical = paged_results.size() == dense_results.size();
    for (size_t i = 0; paged_identical && i < paged_results.size(); ++i) {
      paged_identical = paged_results[i].states == dense_results[i].states;
    }
    identical = identical && paged_identical;
    const double ratio = static_cast<double>(paged_stats.max_active) /
                         static_cast<double>(dense_stats.max_active);
    std::printf(
        "executed short-sequence mix (48 x 4 rows, capacity %u): dense %u "
        "concurrent @ %llu KiB, paged %u concurrent @ %llu KiB (%.1fx), "
        "outputs %s\n\n",
        small.seq_len, dense_stats.max_active,
        static_cast<unsigned long long>(dense_bytes / 1024),
        paged_stats.max_active,
        static_cast<unsigned long long>(paged_bytes / 1024), ratio,
        paged_identical ? "IDENTICAL" : "DIVERGED");
    records.push_back({"paged_concurrency", "dense_max_concurrent",
                       static_cast<double>(dense_stats.max_active), "seqs"});
    records.push_back({"paged_concurrency", "paged_max_concurrent",
                       static_cast<double>(paged_stats.max_active), "seqs"});
    records.push_back({"paged_concurrency", "concurrency_ratio", ratio,
                       "x"});
    records.push_back({"paged_concurrency", "self_kv_budget_bytes",
                       static_cast<double>(paged_bytes), "B"});
    records.push_back({"paged_concurrency", "kv_blocks_peak",
                       static_cast<double>(paged_stats.kv_blocks_peak),
                       "blocks"});
    records.push_back({"paged_concurrency", "outputs_bit_identical",
                       paged_identical ? 1.0 : 0.0, "bool"});
    // Telemetry from the paged run: full lifecycle recorded, histogram
    // percentiles folded into the same record file, Chrome trace to
    // --trace. The stepped loop stamps events with its scheduler step.
    if (telemetry.enabled()) {
      using TE = runtime::TraceEventType;
      identical = identical &&
                  telemetry.trace.count(TE::kAdmit) == requests.size() &&
                  telemetry.trace.count(TE::kComplete) == requests.size();
      for (const auto& s : runtime::metric_samples(telemetry)) {
        records.push_back(
            {"paged_concurrency", s.name + "_" + s.metric, s.value, s.unit});
      }
      if (!trace_path.empty()) {
        const auto events = telemetry.trace.snapshot();
        runtime::write_chrome_trace(trace_path, events);
        std::printf("bench_decoder_scaling: wrote %zu trace events to %s\n",
                    events.size(), trace_path.c_str());
      }
    }
  }

  // --- quantized KV storage: fp8 determinism + fp4-packed concurrency ------
  // fp8 (e4m3) re-encodes stored K/V at the same 1 byte/element as int8 —
  // the datapath win is the fused LUT dequant, so the gate here is
  // reproducibility: paged fp8 decode must equal dense fp8 decode bit for
  // bit, twice. Packed fp4 (e2m1) honestly halves the stored row width,
  // so the SAME pool byte budget as the int8 run above carves twice the
  // blocks and must serve >= 2x the concurrent sequences, executed.
  {
    ref::ModelConfig small;
    small.name = "decoder-quant-kv";
    small.seq_len = 32;
    small.d_model = 128;
    small.num_heads = 4;  // head_dim 32 — even, fp4 packing legal
    small.num_layers = 2;
    small.activation = ref::Activation::kRelu;
    const auto weights = ref::make_random_decoder_weights(small, 31);
    tensor::MatrixF memory(8, small.d_model);
    tensor::MatrixF calib(small.seq_len, small.d_model);
    util::Xoshiro256 rng(32);
    for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
    for (float& x : calib.flat()) x = static_cast<float>(rng.normal());

    runtime::GenerationScheduler scheduler(
        accel::AccelConfig{}, accel::prepare_decoder(weights, calib, memory));
    std::vector<runtime::GenerationRequest> requests;
    for (size_t i = 0; i < 96; ++i) {  // short mix: 4 rows per sequence
      runtime::GenerationRequest req;
      req.prefix = tensor::MatrixF(2, small.d_model);
      for (float& x : req.prefix.flat()) {
        x = static_cast<float>(rng.normal());
      }
      req.memory = &memory;
      req.max_new_tokens = 2;
      const uint32_t d = small.d_model;
      req.next_token = [d](std::span<const float> state,
                           tensor::MatrixF& next) {
        if (next.rows() != 1 || next.cols() != d) {
          next = tensor::MatrixF(1, d);
        }
        for (size_t c = 0; c < d; ++c) next(0, c) = 0.5f * state[c];
        return true;
      };
      requests.push_back(std::move(req));
    }

    // Stored row widths straight from the (storage-aware) footprint
    // model — the same figures KvBlockPool carves.
    const uint64_t row_int8 =
        accel::estimate_kv_footprint(small, 1, 1, numeric::KvStorage::kInt8)
            .row_bytes;
    const uint64_t row_fp8 =
        accel::estimate_kv_footprint(small, 1, 1, numeric::KvStorage::kFp8E4M3)
            .row_bytes;
    const uint64_t row_fp4 =
        accel::estimate_kv_footprint(small, 1, 1, numeric::KvStorage::kFp4E2M1)
            .row_bytes;
    const bool widths_ok = row_fp8 == row_int8 && row_fp4 == row_int8 / 2;

    // fp8 reproducibility: dense vs paged, and paged run-to-run.
    runtime::GenerationSchedulerOptions fp8_dense;
    fp8_dense.slots = 4;
    fp8_dense.kv_block_rows = 0;
    fp8_dense.kv_storage = numeric::KvStorage::kFp8E4M3;
    const auto fp8_dense_results = scheduler.run(requests, fp8_dense);
    runtime::GenerationSchedulerOptions fp8_paged;
    fp8_paged.kv_block_rows = 4;
    fp8_paged.kv_pool_blocks = 32;
    fp8_paged.slots = 32;
    fp8_paged.kv_storage = numeric::KvStorage::kFp8E4M3;
    const auto fp8_paged_a = scheduler.run(requests, fp8_paged);
    const auto fp8_paged_b = scheduler.run(requests, fp8_paged);
    bool fp8_identical = fp8_paged_a.size() == fp8_dense_results.size();
    for (size_t i = 0; fp8_identical && i < fp8_paged_a.size(); ++i) {
      fp8_identical = fp8_paged_a[i].states == fp8_dense_results[i].states &&
                      fp8_paged_a[i].states == fp8_paged_b[i].states;
    }

    // Fixed pool byte budget (the int8 paged run's 4-slot capacity
    // budget): int8 carves 32 blocks, fp4's half-width rows carve 64 —
    // executed concurrency must at least double.
    const uint64_t budget_bytes = uint64_t{32} * 4 * row_int8;
    runtime::GenerationSchedulerOptions int8_run;
    int8_run.kv_block_rows = 4;
    int8_run.kv_pool_blocks =
        budget_bytes / (4 * row_int8);  // 32 blocks
    int8_run.slots = 96;                // pool is the limiter
    const auto int8_results = scheduler.run(requests, int8_run);
    const auto int8_stats = scheduler.last_run();

    runtime::GenerationSchedulerOptions fp4_run = int8_run;
    fp4_run.kv_storage = numeric::KvStorage::kFp4E2M1;
    fp4_run.kv_pool_blocks = budget_bytes / (4 * row_fp4);  // 64 blocks
    const auto fp4_a = scheduler.run(requests, fp4_run);
    const auto fp4_stats = scheduler.last_run();
    const auto fp4_b = scheduler.run(requests, fp4_run);
    bool fp4_deterministic = fp4_a.size() == fp4_b.size();
    for (size_t i = 0; fp4_deterministic && i < fp4_a.size(); ++i) {
      fp4_deterministic = fp4_a[i].states == fp4_b[i].states;
    }
    const double conc_ratio = static_cast<double>(fp4_stats.max_active) /
                              static_cast<double>(int8_stats.max_active);
    const bool fp4_doubles = conc_ratio >= 2.0;

    identical = identical && widths_ok && fp8_identical &&
                fp4_deterministic && fp4_doubles;
    std::printf(
        "quantized KV (96 x 4 rows, %llu KiB pool budget): int8 row %llu B "
        "-> fp8 %llu B, fp4 %llu B; fp8 paged==dense %s; int8 %u concurrent "
        "-> fp4 %u (%.1fx, deterministic %s)\n\n",
        static_cast<unsigned long long>(budget_bytes / 1024),
        static_cast<unsigned long long>(row_int8),
        static_cast<unsigned long long>(row_fp8),
        static_cast<unsigned long long>(row_fp4),
        fp8_identical ? "IDENTICAL" : "DIVERGED", int8_stats.max_active,
        fp4_stats.max_active, conc_ratio, fp4_deterministic ? "yes" : "NO");
    records.push_back({"quant_kv", "row_bytes_int8",
                       static_cast<double>(row_int8), "B"});
    records.push_back({"quant_kv", "row_bytes_fp8",
                       static_cast<double>(row_fp8), "B"});
    records.push_back({"quant_kv", "row_bytes_fp4",
                       static_cast<double>(row_fp4), "B"});
    records.push_back({"quant_kv", "fp8_outputs_bit_identical",
                       fp8_identical ? 1.0 : 0.0, "bool"});
    records.push_back({"quant_kv", "pool_budget_bytes",
                       static_cast<double>(budget_bytes), "B"});
    records.push_back({"quant_kv", "int8_max_concurrent",
                       static_cast<double>(int8_stats.max_active), "seqs"});
    records.push_back({"quant_kv", "fp4_max_concurrent",
                       static_cast<double>(fp4_stats.max_active), "seqs"});
    records.push_back({"quant_kv", "fp4_concurrency_ratio", conc_ratio, "x"});
    records.push_back({"quant_kv", "fp4_deterministic",
                       fp4_deterministic ? 1.0 : 0.0, "bool"});
  }

  // --- COW forking: footprint model + executed beam search -----------------
  // Beam search forks K branches off one prefill. COW shares the prompt
  // lineage once (each beam privately holds only its divergent tail);
  // the eager reference copies the whole lineage per beam. The model
  // table quantifies the bytes saved; the executed run verifies the
  // sharing through pool accounting AND that COW beams emit hypotheses
  // bit-identical to eager-copy caches.
  {
    util::Table fk({"Beams", "Shared blocks", "Private/beam",
                    "COW self-KV (KiB)", "Eager self-KV (KiB)",
                    "Saved by COW"});
    fk.set_title(
        "Forked self-KV footprint (d=768, N=6, prompt 64 + 32 new, "
        "16-row blocks): COW prompt sharing vs eager per-beam copies");
    for (uint32_t beams : {2u, 4u, 8u}) {
      const auto fp = accel::estimate_forked_kv_footprint(
          model, /*prompt_rows=*/64, /*new_rows=*/32, beams,
          /*block_rows=*/16);
      fk.row({std::to_string(beams), std::to_string(fp.shared_blocks),
              std::to_string(fp.private_blocks),
              bench::fmt(static_cast<double>(fp.cow_bytes) / 1024.0, 1),
              bench::fmt(static_cast<double>(fp.eager_bytes) / 1024.0, 1),
              bench::fmt(100.0 * static_cast<double>(fp.bytes_saved) /
                             static_cast<double>(fp.eager_bytes),
                         0) +
                  "%"});
      const std::string name = "fork_footprint_K" + std::to_string(beams);
      records.push_back({name, "cow_self_bytes",
                         static_cast<double>(fp.cow_bytes), "B"});
      records.push_back({name, "eager_self_bytes",
                         static_cast<double>(fp.eager_bytes), "B"});
      records.push_back({name, "cow_bytes_saved",
                         static_cast<double>(fp.bytes_saved), "B"});
    }
    std::printf("%s\n", fk.to_string().c_str());

    const auto beam_perf = accel::estimate_beam_generation_performance(
        cfg, model, /*prefill_len=*/64, /*total_len=*/96, mem_len,
        /*beam_width=*/4);
    records.push_back({"beam4_T96_S64", "model_ms", beam_perf.latency_ms,
                       "ms"});
    records.push_back({"beam4_T96_S64", "model_macs",
                       static_cast<double>(beam_perf.macs), "MACs"});
  }

  // Executed: width-4 beam search on the small model, COW against the
  // eager-copy reference. Gates: identical hypotheses, sharing actually
  // happening (COW peak under both the eager peak and K dense lineages),
  // and the reserve-at-admission bound honored.
  {
    constexpr uint32_t kVocab = 64;
    ref::ModelConfig small;
    small.name = "decoder-beam";
    small.seq_len = 32;
    small.d_model = 128;
    small.num_heads = 4;
    small.num_layers = 2;
    small.activation = ref::Activation::kRelu;
    const auto weights = ref::make_random_decoder_weights(small, 31);
    tensor::MatrixF memory(8, small.d_model);
    tensor::MatrixF calib(small.seq_len, small.d_model);
    util::Xoshiro256 rng(32);
    for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
    for (float& x : calib.flat()) x = static_cast<float>(rng.normal());
    tensor::MatrixF head(kVocab, small.d_model);
    tensor::MatrixF embed(kVocab, small.d_model);
    for (float& x : head.flat()) x = static_cast<float>(rng.normal());
    for (float& x : embed.flat()) {
      x = static_cast<float>(rng.normal() * 0.5);
    }
    const runtime::VocabModel vocab{&head, &embed};
    const auto qd = accel::prepare_decoder(weights, calib, memory);
    std::vector<uint32_t> prompt(12);
    for (size_t i = 0; i < prompt.size(); ++i) {
      prompt[i] = static_cast<uint32_t>(rng.next() % kVocab);
    }

    runtime::BeamSearchOptions opts;
    opts.beam_width = 4;
    opts.max_new_tokens = 8;
    opts.kv_block_rows = 4;
    opts.cow = true;
    // cfg outlives the decoder — BeamSearchDecoder binds it by reference.
    runtime::BeamSearchDecoder cow_dec(cfg, qd, vocab, opts);
    util::Stopwatch cow_watch;
    const auto cow_hyps = cow_dec.generate(prompt, memory);
    const double cow_ms = cow_watch.milliseconds();
    const auto cow_stats = cow_dec.last_run();

    runtime::BeamSearchOptions eager_opts = opts;
    eager_opts.cow = false;
    runtime::BeamSearchDecoder eager_dec(cfg, qd, vocab, eager_opts);
    const auto eager_hyps = eager_dec.generate(prompt, memory);
    const auto eager_stats = eager_dec.last_run();

    bool beams_identical = cow_hyps.size() == eager_hyps.size();
    for (size_t i = 0; beams_identical && i < cow_hyps.size(); ++i) {
      beams_identical = cow_hyps[i].tokens == eager_hyps[i].tokens &&
                        cow_hyps[i].score == eager_hyps[i].score;
    }
    // K dense lineages at the executed shape (the no-sharing baseline).
    const uint64_t dense_equiv_blocks =
        uint64_t{opts.beam_width} *
        ((prompt.size() + opts.max_new_tokens - 1 + opts.kv_block_rows -
          1) /
         opts.kv_block_rows);
    const bool sharing_happened =
        cow_stats.cow_copies > 0 &&
        cow_stats.kv_blocks_peak < eager_stats.kv_blocks_peak &&
        cow_stats.kv_blocks_peak < dense_equiv_blocks &&
        cow_stats.kv_blocks_peak <= cow_stats.worst_case_blocks;
    identical = identical && beams_identical && sharing_happened;

    std::printf(
        "executed beam search K=4 (prompt 12 + 8 new, 4-row blocks): "
        "COW peak %zu blocks vs eager %zu (dense-equivalent %llu), "
        "%llu COW copies, %llu forks, %.2f ms, hypotheses %s\n\n",
        cow_stats.kv_blocks_peak, eager_stats.kv_blocks_peak,
        static_cast<unsigned long long>(dense_equiv_blocks),
        static_cast<unsigned long long>(cow_stats.cow_copies),
        static_cast<unsigned long long>(cow_stats.forks), cow_ms,
        beams_identical ? "IDENTICAL" : "DIVERGED");
    records.push_back({"beam_cow", "beam_width", 4.0, "beams"});
    records.push_back({"beam_cow", "cow_kv_blocks_peak",
                       static_cast<double>(cow_stats.kv_blocks_peak),
                       "blocks"});
    records.push_back({"beam_cow", "eager_kv_blocks_peak",
                       static_cast<double>(eager_stats.kv_blocks_peak),
                       "blocks"});
    records.push_back({"beam_cow", "dense_equiv_blocks",
                       static_cast<double>(dense_equiv_blocks), "blocks"});
    records.push_back({"beam_cow", "cow_copies",
                       static_cast<double>(cow_stats.cow_copies),
                       "copies"});
    records.push_back({"beam_cow", "worst_case_blocks",
                       static_cast<double>(cow_stats.worst_case_blocks),
                       "blocks"});
    records.push_back({"beam_cow", "outputs_bit_identical",
                       beams_identical ? 1.0 : 0.0, "bool"});
    records.push_back({"beam_cow", "prompt_sharing_verified",
                       sharing_happened ? 1.0 : 0.0, "bool"});
  }

  // --- gather-free paged decode: block-strided spans vs gather fallback ----
  // Before/after in ONE run: the same quantized model decodes the same
  // token rows through the legacy gather fallback (copy the cached
  // prefix into contiguous scratch every step — kv_gather_fallback) and
  // the block-strided default (QK/SV stream the block table in place,
  // softmax fused on the i32 accumulator). Steps are timed around
  // T=128; outputs must match bit for bit and the strided session must
  // report zero gathered bytes — both folded into the exit gate.
  {
    ref::ModelConfig mid;
    mid.name = "decoder-strided";
    mid.seq_len = 128;  // synthesized maximum: the last timed step's
    mid.d_model = 256;  // self-attention spans the full 128-row prefix
    mid.num_heads = 4;
    mid.num_layers = 2;
    mid.ffn_dim = 256;  // thin FFN keeps the step attention-dominated
    mid.activation = ref::Activation::kRelu;
    const auto weights = ref::make_random_decoder_weights(mid, 41);
    tensor::MatrixF memory(16, mid.d_model);
    tensor::MatrixF calib(mid.seq_len, mid.d_model);
    util::Xoshiro256 rng(42);
    for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
    for (float& x : calib.flat()) x = static_cast<float>(rng.normal());
    const auto qd = accel::prepare_decoder(weights, calib, memory);

    const uint32_t prefix_rows = 95;
    const uint32_t steps = 33;  // decode positions 95..127 inclusive
    tensor::MatrixF prefix(prefix_rows, mid.d_model);
    tensor::MatrixF tokens(steps, mid.d_model);
    for (float& x : prefix.flat()) x = static_cast<float>(rng.normal());
    for (float& x : tokens.flat()) x = static_cast<float>(rng.normal());

    const accel::AccelConfig hw_cfg;  // sessions bind by reference
    accel::EngineStats gather_stats, strided_stats;
    runtime::GenerationOptions gather_opts;
    gather_opts.kv_block_rows = 16;
    gather_opts.kv_gather_fallback = true;  // the pre-span reference
    runtime::GenerationSession gather(hw_cfg, qd, &gather_stats,
                                      gather_opts);
    runtime::GenerationOptions strided_opts;
    strided_opts.kv_block_rows = 16;
    runtime::GenerationSession strided(hw_cfg, qd, &strided_stats,
                                       strided_opts);

    tensor::MatrixF gs, ss, state;
    gather.prefill(prefix, memory, gs);
    strided.prefill(prefix, memory, ss);
    bool strided_identical = gs == ss;

    // Interleave the timed steps (gather, strided, gather, ...) so both
    // modes see the same clock/thermal conditions; per-step wall times
    // accumulate separately.
    const uint64_t gathered_before = gather_stats.gathered_bytes;
    const uint64_t runs_before = strided_stats.span_runs;
    tensor::MatrixF gstate;
    std::vector<double> gather_samples, strided_samples;
    util::Stopwatch watch;
    for (uint32_t t = 0; t < steps; ++t) {
      const auto token = tokens.slice_rows(t, 1);
      watch.reset();
      gather.decode_step(token, gstate);
      gather_samples.push_back(watch.milliseconds());
      watch.reset();
      strided.decode_step(token, state);
      strided_samples.push_back(watch.milliseconds());
      strided_identical = strided_identical && state == gstate;
    }
    const double gather_ms = bench::median(gather_samples);
    const double strided_ms = bench::median(strided_samples);
    const uint64_t gathered = gather_stats.gathered_bytes - gathered_before;
    const uint64_t span_runs = strided_stats.span_runs - runs_before;
    const bool zero_gather = strided_stats.gathered_bytes == 0;
    identical = identical && strided_identical && zero_gather;

    std::printf(
        "executed paged decode @ T=128 (%s, d=%u, h=%u, N=%u, 16-row "
        "blocks, %u timed steps): gather fallback %.3f ms/step "
        "(%llu KiB copied), block-strided %.3f ms/step (%.2fx, %llu span "
        "runs, %llu gathered bytes), outputs %s\n\n",
        ci ? "ci" : "full", mid.d_model, mid.num_heads, mid.num_layers,
        steps, gather_ms,
        static_cast<unsigned long long>(gathered / 1024), strided_ms,
        gather_ms / strided_ms, static_cast<unsigned long long>(span_runs),
        static_cast<unsigned long long>(strided_stats.gathered_bytes),
        strided_identical && zero_gather ? "IDENTICAL" : "DIVERGED");
    records.push_back(
        {"decode_T128_d256", "gather_step_ms", gather_ms, "ms"});
    records.push_back(
        {"decode_T128_d256", "strided_step_ms", strided_ms, "ms"});
    records.push_back({"decode_T128_d256", "step_speedup",
                       gather_ms / strided_ms, "x"});
    records.push_back({"decode_T128_d256", "gather_bytes_per_step",
                       static_cast<double>(gathered) / steps, "B"});
    records.push_back({"decode_T128_d256", "strided_gathered_bytes",
                       static_cast<double>(strided_stats.gathered_bytes),
                       "B"});
    records.push_back({"decode_T128_d256", "strided_span_runs",
                       static_cast<double>(span_runs), "runs"});
    records.push_back({"decode_T128_d256", "outputs_bit_identical",
                       strided_identical && zero_gather ? 1.0 : 0.0,
                       "bool"});

    // Isolated attention stage at the same shape (one head, 128 cached
    // rows): span engines straight off the block table vs gather-then-
    // contiguous. The full step above is dominated by weight
    // packing/GEMM work identical in both modes; this isolates exactly
    // the stage the block-strided path rewrites.
    {
      runtime::KvCache cache;
      runtime::KvCacheOptions kv_opts;
      kv_opts.block_rows = 16;
      const uint32_t rows = 128, dk = mid.head_dim();
      cache.configure(mid.num_layers, mid.num_heads, dk, mid.seq_len,
                      rows, kv_opts);
      cache.begin_sequence(rows);
      if (!cache.try_reserve_rows(rows)) throw std::logic_error("bench kv");
      tensor::MatrixI8 fill(rows, dk);
      for (int8_t& x : fill.flat()) {
        x = static_cast<int8_t>(rng.next() % 255 - 127);
      }
      for (size_t l = 0; l < mid.num_layers; ++l) {
        for (size_t h = 0; h < mid.num_heads; ++h) {
          cache.scatter_self(l, h, 0, fill, fill);
        }
      }
      cache.append(rows);

      tensor::MatrixI8 q(1, dk);
      for (int8_t& x : q.flat()) {
        x = static_cast<int8_t>(rng.next() % 255 - 127);
      }
      const auto rq_logit = numeric::make_requant_params(1.0 / (8.0 * dk));
      const auto rq_sv = numeric::make_requant_params(1.0 / 160.0);
      const accel::SoftmaxUnit softmax(0.08);
      runtime::WorkspaceArena ws(1 << 20);
      tensor::MatrixI8 weights(1, rows), scores(1, dk);
      tensor::MatrixI8 weights_ref(1, rows), scores_ref(1, dk);

      const uint32_t reps = 300;
      std::vector<double> span_us, copy_us;
      for (uint32_t r = 0; r < reps; ++r) {
        const size_t layer = r % mid.num_layers;
        const size_t head = r % mid.num_heads;
        watch.reset();
        {
          const auto m = ws.mark();
          auto k_runs =
              ws.span_of<tensor::RowSpanI8>(cache.max_self_span_runs(rows));
          auto v_runs =
              ws.span_of<tensor::RowSpanI8>(cache.max_self_span_runs(rows));
          const auto k = cache.self_spans(layer, head, 0, rows, k_runs);
          const auto v = cache.self_spans(layer, head, 1, rows, v_runs);
          accel::run_qk_softmax_engine(q, k, rq_logit, softmax, rows - 1,
                                       weights, ws);
          accel::run_sv_engine(weights, v, rq_sv, scores, ws);
          ws.rewind(m);
        }
        span_us.push_back(watch.microseconds());
        watch.reset();
        {
          const auto m = ws.mark();
          auto k_gather = ws.matrix_i8(rows, dk);
          auto v_gather = ws.matrix_i8(rows, dk);
          cache.gather_self(layer, head, rows, k_gather, v_gather);
          auto logits = ws.matrix_i8(1, rows);
          accel::run_qk_engine(q, k_gather, rq_logit, logits, ws);
          softmax.run_causal_into(logits, weights_ref, rows - 1);
          accel::run_sv_engine(weights_ref, v_gather, rq_sv, scores_ref,
                               ws);
          ws.rewind(m);
        }
        copy_us.push_back(watch.microseconds());
        strided_identical = strided_identical &&
                            weights == weights_ref && scores == scores_ref;
      }
      const double span_med = bench::median(span_us);
      const double copy_med = bench::median(copy_us);
      identical = identical && strided_identical;
      std::printf(
          "isolated attention stage (1 head, %u cached rows, dk=%u, "
          "median of %u reps): gather+contiguous %.1f us, block-strided "
          "spans %.1f us (%.2fx), outputs %s\n\n",
          rows, dk, reps, copy_med, span_med, copy_med / span_med,
          strided_identical ? "IDENTICAL" : "DIVERGED");
      records.push_back(
          {"attn_stage_T128", "gather_stage_us", copy_med, "us"});
      records.push_back(
          {"attn_stage_T128", "strided_stage_us", span_med, "us"});
      records.push_back({"attn_stage_T128", "stage_speedup",
                         copy_med / span_med, "x"});
    }
  }

  // --- cross-request prefix cache: shared-document fleet, cold vs warm -----
  // Six requests share one 12-row document prefix (75% of each 16-row
  // prompt) over one encoder memory. The cold pass prefills every prompt
  // from scratch; the warm pass routes the same prompts through a
  // PrefixCache, so request 0 publishes and requests 1..5 adopt the
  // document blocks by refcount and reuse the cached cross projections.
  // Exit gates: warm outputs bit-identical to cold (prefill AND decode),
  // each adopter's executed cold-minus-warm prefill MAC delta EXACTLY
  // equals estimate_prefix_cache_savings, aggregate adopter prefill MACs
  // cut by >= 2x, and a nonzero hit rate.
  {
    ref::ModelConfig small;
    small.name = "decoder-prefix";
    small.seq_len = 32;
    small.d_model = 128;
    small.num_heads = 4;
    small.num_layers = 2;
    small.activation = ref::Activation::kRelu;
    const auto weights = ref::make_random_decoder_weights(small, 51);
    tensor::MatrixF memory(8, small.d_model);
    tensor::MatrixF calib(small.seq_len, small.d_model);
    util::Xoshiro256 rng(52);
    for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
    for (float& x : calib.flat()) x = static_cast<float>(rng.normal());
    const auto qd = accel::prepare_decoder(weights, calib, memory);
    const accel::AccelConfig hw_cfg;

    constexpr size_t kRequests = 6;
    constexpr uint32_t kDocRows = 12;   // shared prefix (75% overlap)
    constexpr uint32_t kTailRows = 4;   // unique per request
    constexpr uint32_t kPromptRows = kDocRows + kTailRows;
    constexpr size_t kBlockRows = 4;
    constexpr size_t kChunk = 3;
    constexpr uint32_t kDecodeSteps = 2;
    tensor::MatrixF doc(kDocRows, small.d_model);
    for (float& x : doc.flat()) x = static_cast<float>(rng.normal());
    std::vector<tensor::MatrixF> prompts;
    for (size_t i = 0; i < kRequests; ++i) {
      tensor::MatrixF p(kPromptRows, small.d_model);
      for (uint32_t r = 0; r < kDocRows; ++r) {
        for (size_t c = 0; c < small.d_model; ++c) p(r, c) = doc(r, c);
      }
      for (uint32_t r = kDocRows; r < kPromptRows; ++r) {
        for (size_t c = 0; c < small.d_model; ++c) {
          p(r, c) = static_cast<float>(rng.normal());
        }
      }
      prompts.push_back(std::move(p));
    }
    // Chunked tail feed shared by both passes (same schedule the
    // scheduler runs, so the MAC model replays it exactly).
    const auto feed_tail = [&](runtime::GenerationSession& s,
                               const tensor::MatrixF& prompt, size_t from,
                               tensor::MatrixF& states) {
      tensor::MatrixF chunk_out;
      for (size_t pos = from; pos < prompt.rows();) {
        const size_t n = kChunk == 0 ? prompt.rows() - pos
                                     : std::min(kChunk, prompt.rows() - pos);
        s.prefill_rows(prompt.slice_rows(pos, n), chunk_out);
        for (size_t r = 0; r < n; ++r) {
          for (size_t c = 0; c < small.d_model; ++c) {
            states(pos + r, c) = chunk_out(r, c);
          }
        }
        pos += n;
      }
    };
    const auto next_token = [&](std::span<const float> state,
                                tensor::MatrixF& next) {
      if (next.rows() != 1 || next.cols() != small.d_model) {
        next = tensor::MatrixF(1, small.d_model);
      }
      for (size_t c = 0; c < small.d_model; ++c) next(0, c) = 0.5f * state[c];
    };

    // Cold pass: private sessions, no cache. Per-request prefill MACs.
    std::vector<tensor::MatrixF> cold_states(kRequests);
    std::vector<std::vector<tensor::MatrixF>> cold_decodes(kRequests);
    std::vector<uint64_t> cold_macs(kRequests, 0);
    for (size_t i = 0; i < kRequests; ++i) {
      accel::EngineStats st;
      runtime::GenerationOptions opts;
      opts.kv_block_rows = kBlockRows;
      opts.prefill_chunk = kChunk;
      runtime::GenerationSession s(hw_cfg, qd, &st, opts);
      cold_states[i] = tensor::MatrixF(kPromptRows, small.d_model);
      s.prefill_begin(memory);
      feed_tail(s, prompts[i], 0, cold_states[i]);
      cold_macs[i] = st.macs;
      tensor::MatrixF token, state;
      next_token(cold_states[i].row(kPromptRows - 1), token);
      for (uint32_t t = 0; t < kDecodeSteps; ++t) {
        s.decode_step(token, state);
        cold_decodes[i].push_back(state);
        next_token(state.row(0), token);
      }
      s.end_sequence();
    }

    // Warm pass: one shared pool + PrefixCache across the fleet.
    runtime::KvBlockPool pool;
    pool.configure(/*num_blocks=*/64, kBlockRows,
                   accel::estimate_kv_footprint(small, 1, 1).row_bytes);
    runtime::PrefixCache cache;
    cache.configure(pool, kBlockRows, small.d_model);
    bool prefix_identical = true;
    bool model_match = true;
    uint64_t warm_hit_macs = 0, cold_hit_macs = 0;
    size_t adopters = 0;
    for (size_t i = 0; i < kRequests; ++i) {
      accel::EngineStats st;
      runtime::GenerationOptions opts;
      opts.kv_block_rows = kBlockRows;
      opts.kv_pool = &pool;
      opts.prefill_chunk = kChunk;
      runtime::GenerationSession s(hw_cfg, qd, &st, opts);
      tensor::MatrixF states(kPromptRows, small.d_model);
      bool cross_hit = false;
      const size_t adopted = s.prefill_begin_cached(
          cache, prompts[i], memory, states, nullptr, &cross_hit);
      feed_tail(s, prompts[i], adopted, states);
      const uint64_t warm_macs = st.macs;
      s.publish_prefix(cache, prompts[i], memory, states);
      prefix_identical = prefix_identical && states == cold_states[i];
      tensor::MatrixF token, state;
      next_token(states.row(kPromptRows - 1), token);
      for (uint32_t t = 0; t < kDecodeSteps; ++t) {
        s.decode_step(token, state);
        prefix_identical = prefix_identical && state == cold_decodes[i][t];
        next_token(state.row(0), token);
      }
      s.end_sequence();
      if (adopted > 0) {
        ++adopters;
        warm_hit_macs += warm_macs;
        cold_hit_macs += cold_macs[i];
        accel::GenerationCosting costing;
        costing.prefill_chunk = kChunk;
        costing.adopted_rows = static_cast<uint32_t>(adopted);
        costing.cross_cached = cross_hit;
        const auto sv = accel::estimate_prefix_cache_savings(
            hw_cfg, small, kPromptRows, /*memory_len=*/8, costing);
        model_match =
            model_match && cold_macs[i] - warm_macs == sv.macs_saved;
      }
    }
    const auto ps = cache.stats();
    cache.clear();
    const bool pool_drained = pool.used_blocks() == 0;
    const double mac_reduction =
        static_cast<double>(cold_hit_macs) /
        static_cast<double>(std::max<uint64_t>(warm_hit_macs, 1));
    const uint64_t bytes_saved = ps.bytes_adopted + ps.cross_bytes_reused;
    const bool hits_ok = adopters == kRequests - 1 &&
                         ps.prefix_hits == kRequests - 1 &&
                         ps.cross_hits == kRequests - 1;
    identical = identical && prefix_identical && model_match && hits_ok &&
                pool_drained && mac_reduction >= 2.0;

    std::printf(
        "executed prefix-cache fleet (%zu prompts, %u-row shared doc of "
        "%u, %zu-row blocks, %zu-row chunks): %llu/%llu prefix hit/miss, "
        "%llu rows adopted, %llu KV+cross bytes saved, adopter prefill "
        "MACs %.2fx lower (model match %s), outputs %s\n\n",
        kRequests, kDocRows, kPromptRows, kBlockRows, kChunk,
        static_cast<unsigned long long>(ps.prefix_hits),
        static_cast<unsigned long long>(ps.prefix_misses),
        static_cast<unsigned long long>(ps.rows_adopted),
        static_cast<unsigned long long>(bytes_saved), mac_reduction,
        model_match ? "EXACT" : "DIVERGED",
        prefix_identical ? "IDENTICAL" : "DIVERGED");
    records.push_back({"prefix_cache", "prefix_hits",
                       static_cast<double>(ps.prefix_hits), "hits"});
    records.push_back({"prefix_cache", "prefix_misses",
                       static_cast<double>(ps.prefix_misses), "misses"});
    records.push_back({"prefix_cache", "cross_kv_hits",
                       static_cast<double>(ps.cross_hits), "hits"});
    records.push_back({"prefix_cache", "rows_skipped",
                       static_cast<double>(ps.rows_adopted), "rows"});
    records.push_back({"prefix_cache", "bytes_saved",
                       static_cast<double>(bytes_saved), "B"});
    records.push_back({"prefix_cache", "cold_prefill_macs",
                       static_cast<double>(cold_hit_macs), "MACs"});
    records.push_back({"prefix_cache", "warm_prefill_macs",
                       static_cast<double>(warm_hit_macs), "MACs"});
    records.push_back(
        {"prefix_cache", "prefill_mac_reduction", mac_reduction, "x"});
    records.push_back({"prefix_cache", "model_macs_exact",
                       model_match ? 1.0 : 0.0, "bool"});
    records.push_back({"prefix_cache", "outputs_bit_identical",
                       prefix_identical ? 1.0 : 0.0, "bool"});
  }

  bench::write_bench_records("BENCH_generation.json",
                             "bench_decoder_scaling", records);
  std::printf("CSV written to bench_results/decoder_scaling.csv\n");
  // Fail the CI bench step if the cached engine ever diverges from the
  // full-recompute controller in this configuration.
  return identical ? 0 : 1;
}
