// Ablation: load/compute overlap (double-buffered tiles) vs serialized
// load-then-compute, across HBM channel allocations.
//
// The paper reports latency "accounting for the overlap of data loading
// and computation"; this quantifies what that overlap buys as the memory
// system gets weaker (fewer HBM channels bound to the kernel).
#include <cstdio>

#include "bench_common.hpp"
#include "ref/model_zoo.hpp"

int main() {
  using namespace protea;

  util::Table table({"HBM channels", "Overlap", "Latency (ms)",
                     "vs overlapped", "HBM traffic (MiB)"});
  table.set_title(
      "ABLATION — tile-load/compute overlap (BERT variant, paper "
      "synthesis)");
  util::CsvWriter csv(bench::results_dir() + "/ablation_overlap.csv",
                      {"channels", "overlap", "latency_ms", "slowdown",
                       "bytes_loaded"});

  const auto bert = ref::bert_variant();
  for (uint32_t channels : {1u, 2u, 4u, 8u, 16u}) {
    double overlapped_ms = 0.0;
    for (bool overlap : {true, false}) {
      accel::AccelConfig cfg;
      cfg.synth.hbm_channels_used = channels;
      cfg.overlap_loads = overlap;
      const auto report = accel::estimate_performance(cfg, bert);
      if (overlap) overlapped_ms = report.latency_ms;
      const double slowdown = report.latency_ms / overlapped_ms;
      table.row({std::to_string(channels), overlap ? "yes" : "no",
                 bench::fmt(report.latency_ms, 1),
                 overlap ? "1" : bench::fmt(slowdown, 3) + "x",
                 bench::fmt(static_cast<double>(report.bytes_loaded) /
                                (1024.0 * 1024.0),
                            1)});
      csv.row({std::to_string(channels), overlap ? "1" : "0",
               bench::fmt(report.latency_ms, 3), bench::fmt(slowdown, 4),
               std::to_string(report.bytes_loaded)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "With the paper's 8-channel binding the workload is compute-bound "
      "and overlap is nearly free;\nat 1-2 channels the FFN weight "
      "streams dominate and overlap becomes essential.\n");
  std::printf("CSV written to bench_results/ablation_overlap.csv\n");
  return 0;
}
