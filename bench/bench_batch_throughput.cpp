// Extension bench: serving throughput under MHA/FFN module pipelining
// across a batch of sequences (batch=1 is the paper's latency mode).
#include <cstdio>

#include "accel/batch_pipeline.hpp"
#include "bench_common.hpp"
#include "ref/model_zoo.hpp"

int main() {
  using namespace protea;

  const accel::AccelConfig cfg;

  util::Table table({"Workload", "Batch", "Latency (ms)", "Seq/s",
                     "Speedup vs serial", "Bottleneck"});
  table.set_title(
      "EXTENSION — batch throughput with MHA/FFN module pipelining");
  util::CsvWriter csv(bench::results_dir() + "/batch_throughput.csv",
                      {"workload", "batch", "latency_ms", "seq_per_s",
                       "speedup", "mha_cycles", "ffn_cycles"});

  for (const char* name : {"bert", "efa_trans25", "wojcicki23"}) {
    const auto model = ref::find_model(name);
    for (uint32_t batch : {1u, 2u, 4u, 8u, 16u}) {
      const auto report =
          accel::estimate_batch_performance(cfg, model, batch);
      const bool ffn_bound =
          report.ffn_stage_cycles >= report.mha_stage_cycles;
      table.row({name, std::to_string(batch),
                 bench::fmt(report.latency_ms, 2),
                 bench::fmt(report.throughput_seq_per_s, 1),
                 bench::fmt(report.speedup_vs_serial, 3) + "x",
                 ffn_bound ? "FFN module" : "MHA module"});
      csv.row({name, std::to_string(batch),
               bench::fmt(report.latency_ms, 3),
               bench::fmt(report.throughput_seq_per_s, 2),
               bench::fmt(report.speedup_vs_serial, 4),
               std::to_string(report.mha_stage_cycles),
               std::to_string(report.ffn_stage_cycles)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "For BERT-class models the FFN module dominates (~26x the MHA "
      "time), so pipelining buys\nonly a few percent — confirming the "
      "paper's focus on FFN tiling. Attention-heavy tiny models\n(short "
      "FFN, long softmax) gain the most.\n");
  std::printf("CSV written to bench_results/batch_throughput.csv\n");
  return 0;
}
