// Ablation: quantization accuracy of the int8 datapath.
//
// The paper quantizes to 8-bit fixed point and notes accuracy "was not a
// primary focus". This bench quantifies what that costs: end-to-end error
// of the simulated accelerator against the float reference across model
// depths and calibration margins, plus per-tensor round-trip error across
// bit widths (the HLS-parameterized precision the paper mentions).
#include <cstdio>

#include "accel/accelerator.hpp"
#include "bench_common.hpp"
#include "numeric/quantizer.hpp"
#include "ref/encoder.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

int main() {
  using namespace protea;

  // Part 1: per-tensor round-trip error vs bit width.
  {
    util::Table table({"Bits", "Max |err|", "RMS err", "Saturated"});
    table.set_title(
        "ABLATION (a) — weight-tensor quantization error vs bit width "
        "(N(0, 1/sqrt(768)) weights)");
    util::Xoshiro256 rng(404);
    std::vector<float> data(768 * 768);
    for (auto& x : data) {
      x = static_cast<float>(rng.normal() / 27.7);  // sqrt(768)
    }
    for (int bits : {4, 6, 8, 12, 16}) {
      numeric::Quantizer q(bits, true);
      q.calibrate(data);
      const auto stats = q.measure(data);
      table.row({std::to_string(bits), bench::fmt(stats.max_abs_error, 6),
                 bench::fmt(stats.rms_error, 6),
                 std::to_string(stats.saturated_count)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Part 2: end-to-end int8 datapath error vs model depth.
  {
    util::Table table({"Layers", "RMS err vs float", "Max |err|"});
    table.set_title(
        "ABLATION (b) — end-to-end accelerator error vs depth "
        "(d=64, h=4, SL=16; outputs are layer-normalized)");
    util::CsvWriter csv(bench::results_dir() + "/ablation_quant.csv",
                        {"layers", "rms_err", "max_err"});
    for (uint32_t layers : {1u, 2u, 4u, 8u}) {
      ref::ModelConfig cfg;
      cfg.seq_len = 16;
      cfg.d_model = 64;
      cfg.num_heads = 4;
      cfg.num_layers = layers;
      const auto weights = ref::make_random_weights(cfg, 500 + layers);
      const auto input = ref::make_random_input(cfg, 600 + layers);
      ref::Encoder reference(weights);
      const auto ref_out = reference.forward(input);

      accel::AccelConfig acfg;
      accel::ProteaAccelerator accelerator(acfg);
      accelerator.load_model(accel::prepare_model(weights, input));
      const auto out = accelerator.forward(input);

      const float rms = tensor::rms_diff(out, ref_out);
      const float max = tensor::max_abs_diff(out, ref_out);
      table.row({std::to_string(layers), bench::fmt(rms, 4),
                 bench::fmt(max, 4)});
      csv.row({std::to_string(layers), bench::fmt(rms, 5),
               bench::fmt(max, 5)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "LayerNorm renormalizes every layer, so int8 error stays bounded "
        "instead of compounding.\nCSV written to "
        "bench_results/ablation_quant.csv\n");
  }
  return 0;
}
