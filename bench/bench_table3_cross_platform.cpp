// Regenerates Table III: cross-platform comparison.
//
// For each of the four TNN workloads (#1..#4) the paper compares ProTEA
// against CPUs and GPUs. GPU rows quote the paper's published numbers;
// the CPU row is additionally re-measured LIVE on this machine with the
// threaded float baseline, so speed-up ratios can be regenerated on any
// host. ProTEA's side comes from the cycle-model simulator.
#include <cstdio>
#include <map>

#include "baseline/cpu_encoder.hpp"
#include "baseline/published.hpp"
#include "baseline/sparsity.hpp"
#include "bench_common.hpp"
#include "ref/model_zoo.hpp"
#include "ref/weights.hpp"

int main() {
  using namespace protea;

  const accel::AccelConfig cfg;

  // ProTEA's published speed-up against each model's base platform.
  const std::map<std::string, double> paper_protea_speedup = {
      {"#1", 0.79}, {"#2", 2.5}, {"#3", 0.89}, {"#4", 16.0}};

  util::Table table({"TNN", "Works", "Platform", "Freq", "Latency(ms)",
                     "Speedup vs base"});
  table.set_title(
      "TABLE III — cross-platform comparison (GPU/CPU rows: published "
      "values; 'this host' rows:\nmeasured live; ProTEA rows: simulated)");
  util::CsvWriter csv(bench::results_dir() + "/table3_cross_platform.csv",
                      {"model", "platform", "source", "latency_ms",
                       "speedup_vs_base", "paper_speedup"});

  std::string current_model;
  double base_latency = 0.0;
  for (const auto& row : baseline::table3_results()) {
    const auto model = ref::find_model(row.model_zoo_name);

    if (row.model_id != current_model) {
      current_model = row.model_id;
      base_latency = 0.0;
    }
    if (row.is_base) base_latency = row.latency_ms;
    const double speedup =
        base_latency > 0.0 ? base_latency / row.latency_ms : 1.0;

    table.row({row.model_id, row.citation, row.platform,
               bench::fmt(row.frequency_ghz, 1) + " GHz",
               bench::fmt(row.latency_ms, 3),
               row.is_base ? "1 (base)" : bench::fmt(speedup, 1) + "x"});
    csv.row({row.model_id, row.platform, "published",
             bench::fmt(row.latency_ms, 4), bench::fmt(speedup, 2),
             bench::fmt(row.paper_speedup, 2)});

    if (row.is_base) {
      // Live CPU measurement of the same workload on this host.
      const auto weights = ref::make_random_weights(model, 7);
      const auto input = ref::make_random_input(model, 8);
      baseline::CpuEncoder cpu(weights);
      const auto measured = cpu.measure(input, 5, 2);
      table.row({row.model_id, "(ours)", "CPU on this host", "-",
                 bench::fmt(measured.mean_ms, 3),
                 bench::fmt(base_latency / measured.mean_ms, 2) + "x"});
      csv.row({row.model_id, "cpu_this_host", "measured",
               bench::fmt(measured.mean_ms, 4),
               bench::fmt(base_latency / measured.mean_ms, 2), ""});
    }

    // Emit the ProTEA row after the last platform row of each model
    // block (the base row comes first in our data for #2/#4 blocks).
    const bool last_of_block = [&] {
      const auto& rows = baseline::table3_results();
      for (size_t i = 0; i < rows.size(); ++i) {
        if (&rows[i] == &row) {
          return i + 1 == rows.size() ||
                 rows[i + 1].model_id != row.model_id;
        }
      }
      return false;
    }();
    if (last_of_block) {
      const auto report = accel::estimate_performance(cfg, model);
      const double protea_speedup = base_latency / report.latency_ms;
      const double paper_value = paper_protea_speedup.at(row.model_id);
      table.row({row.model_id, "(ours)", "ProTEA (simulated FPGA)",
                 "0.2 GHz", bench::fmt(report.latency_ms, 3),
                 bench::fmt(protea_speedup, 2) + "x (paper: " +
                     bench::fmt(paper_value, 2) + "x)"});
      csv.row({row.model_id, "protea_simulated", "simulated",
               bench::fmt(report.latency_ms, 4),
               bench::fmt(protea_speedup, 2),
               bench::fmt(paper_value, 2)});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check: ProTEA beats the Titan XP on models #2 and #4 "
      "(paper: 2.5x and 16x) and trails\nthe pruned/sparse comparisons "
      "on models #1 and #3 (paper: 0.79x and 0.89x).\n");
  std::printf("CSV written to bench_results/table3_cross_platform.csv\n");
  return 0;
}
