// Serving-runtime benchmark: batched scheduler throughput vs serial
// back-to-back forwards, emitted as bench_results/BENCH_runtime.json.
//
// Two time domains are reported, consistent with the rest of the repo:
//
//   * model cycles — the simulated accelerator's own clock (the domain
//     every Table I-III number lives in). The deployment speedup here is
//     deterministic: W workers each drive a module-replicated accelerator
//     instance, so a batch of B sequences takes the cycles of the worst
//     per-instance share instead of B serial passes. The strict
//     single-accelerator two-stage schedule is replayed task-by-task and
//     cross-checked cycle-exactly against estimate_batch_performance.
//   * host wall-clock — what this machine measures while executing the
//     real int8 datapath; it tracks the model speedup when the host has
//     >= threads cores and degrades toward 1x on fewer.
#include <cstdio>
#include <thread>
#include <vector>

#include "accel/batch_pipeline.hpp"
#include "accel/perf_model.hpp"
#include "accel/quantized_model.hpp"
#include "bench_common.hpp"
#include "ref/encoder.hpp"
#include "ref/model_config.hpp"
#include "runtime/batch_scheduler.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace protea;

constexpr uint32_t kBatch = 8;
constexpr size_t kThreads = 4;

runtime::BatchScheduler make_scheduler(const ref::ModelConfig& cfg) {
  const auto weights = ref::make_random_weights(cfg, 2024);
  const auto calib = ref::make_random_input(cfg, 2025);
  accel::QuantizedModel qm = accel::prepare_model(weights, calib);
  return {accel::AccelConfig{}, std::move(qm)};
}

/// Model cycles of what run_batched(threads, slots = threads) executes:
/// each worker is an independent accelerator instance running its share
/// of the batch back-to-back.
hw::Cycles deployment_model_cycles(const runtime::BatchScheduler& scheduler,
                                   uint32_t batch, size_t workers) {
  const accel::PerfReport per_seq = accel::estimate_performance(
      scheduler.config(), scheduler.model().config);
  const uint32_t base = batch / static_cast<uint32_t>(workers);
  const uint32_t extra = batch % static_cast<uint32_t>(workers);
  const uint32_t worst_share = base + (extra > 0 ? 1 : 0);
  return per_seq.total_cycles * worst_share;
}

}  // namespace

int main() {
  ref::ModelConfig cfg;
  cfg.seq_len = 64;
  cfg.d_model = 256;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  cfg.activation = ref::Activation::kGelu;

  runtime::BatchScheduler scheduler = make_scheduler(cfg);
  std::vector<tensor::MatrixF> inputs;
  inputs.reserve(kBatch);
  for (uint32_t i = 0; i < kBatch; ++i) {
    inputs.push_back(ref::make_random_input(cfg, 3000 + i));
  }

  // Serial baseline: one session, back-to-back forwards.
  const auto serial_out = scheduler.run_serial(inputs);
  const double serial_ms = scheduler.last_run().wall_ms;

  // Batched serving: one session per worker, module slots = workers.
  runtime::BatchOptions opts;
  opts.threads = kThreads;
  const auto batched_out = scheduler.run_batched(inputs, opts);
  const double batched_ms = scheduler.last_run().wall_ms;

  // Strict single-accelerator mode: one MHA + one FFN module slot — the
  // paper's two-stage pipeline executed for real.
  runtime::BatchOptions strict;
  strict.threads = 2;
  strict.mha_slots = 1;
  strict.ffn_slots = 1;
  const auto strict_out = scheduler.run_batched(inputs, strict);
  const double strict_ms = scheduler.last_run().wall_ms;

  bool identical = true;
  for (uint32_t i = 0; i < kBatch; ++i) {
    identical = identical && serial_out[i] == batched_out[i] &&
                serial_out[i] == strict_out[i];
  }

  // Model-domain accounting.
  const accel::BatchReport predicted = scheduler.predicted(kBatch);
  const hw::Cycles replay = scheduler.simulate_pipeline_cycles(kBatch);
  const hw::Cycles deploy =
      deployment_model_cycles(scheduler, kBatch, kThreads);
  const double model_speedup =
      static_cast<double>(predicted.serial_cycles) /
      static_cast<double>(deploy);
  const double two_stage_speedup = predicted.speedup_vs_serial;
  const double wall_speedup = serial_ms > 0.0 ? serial_ms / batched_ms : 0.0;
  const double serial_seq_s = kBatch / (serial_ms * 1e-3);
  const double batched_seq_s = kBatch / (batched_ms * 1e-3);

  char name[96];
  std::snprintf(name, sizeof(name), "encoder_sl%u_d%u_l%u_b%u_t%zu",
                cfg.seq_len, cfg.d_model, cfg.num_layers, kBatch, kThreads);

  std::vector<bench::BenchRecord> records;
  records.push_back({name, "serial_wall_latency", serial_ms, "ms"});
  records.push_back({name, "batched_wall_latency", batched_ms, "ms"});
  records.push_back({name, "strict_two_stage_wall_latency", strict_ms, "ms"});
  records.push_back({name, "serial_wall_throughput", serial_seq_s, "seq/s"});
  records.push_back(
      {name, "batched_wall_throughput", batched_seq_s, "seq/s"});
  records.push_back({name, "wallclock_speedup", wall_speedup, "x"});
  records.push_back({name, "serial_model_cycles",
                     static_cast<double>(predicted.serial_cycles), "cycles"});
  records.push_back({name, "deployment_model_cycles",
                     static_cast<double>(deploy), "cycles"});
  // Headline batched-vs-serial serving speedup in the accelerator's own
  // time domain (deterministic; wall-clock tracks it on >= kThreads
  // cores).
  records.push_back({name, "speedup", model_speedup, "x"});
  records.push_back(
      {name, "two_stage_pipeline_speedup", two_stage_speedup, "x"});
  records.push_back({name, "two_stage_replay_matches_model",
                     replay == predicted.pipelined_cycles ? 1.0 : 0.0,
                     "bool"});
  records.push_back(
      {name, "outputs_bitidentical", identical ? 1.0 : 0.0, "bool"});
  records.push_back({name, "host_threads",
                     static_cast<double>(kThreads), "threads"});
  records.push_back(
      {name, "host_cores",
       static_cast<double>(std::thread::hardware_concurrency()), "cores"});

  bench::write_bench_records("BENCH_runtime.json", "bench_runtime", records);

  std::printf(
      "batch %u: serial %.1f ms, batched(t%zu) %.1f ms "
      "(wall %.2fx, model %.2fx), strict 2-stage %.1f ms, "
      "outputs %s, replay %s\n",
      kBatch, serial_ms, kThreads, batched_ms, wall_speedup, model_speedup,
      strict_ms, identical ? "bit-identical" : "MISMATCH",
      replay == predicted.pipelined_cycles ? "matches model" : "MISMATCH");
  return identical && replay == predicted.pipelined_cycles ? 0 : 1;
}
