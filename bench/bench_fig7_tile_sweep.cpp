// Regenerates Fig. 7: choosing the optimum tile size.
//
// Sweeps the number of tiles in MHA {6, 12, 48} (series) against the
// number of tiles in FFN {2..6} (x-axis) for the BERT-variant workload,
// reporting achieved frequency (MHz) and latency normalized to the
// minimum — the two series of the paper's figure. The optimum must land
// at 12 MHA tiles / 6 FFN tiles at 200 MHz.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "hw/frequency_model.hpp"
#include "hw/resource_model.hpp"
#include "ref/model_zoo.hpp"

int main() {
  using namespace protea;

  const ref::ModelConfig bert = ref::bert_variant();

  struct Point {
    uint32_t mha_tiles, ffn_tiles;
    double fmax, latency_ms;
    bool fits;
  };
  std::vector<Point> grid;
  double min_latency = 1e300;

  for (uint32_t mha_tiles : {6u, 12u, 48u}) {
    for (uint32_t ffn_tiles = 2; ffn_tiles <= 6; ++ffn_tiles) {
      accel::AccelConfig cfg;
      cfg.synth.ts_mha = bert.d_model / mha_tiles;
      cfg.synth.ts_ffn = static_cast<uint32_t>(
          std::ceil(static_cast<double>(bert.d_model) / ffn_tiles));
      const auto report = accel::estimate_performance(cfg, bert);
      const auto resources = hw::estimate_resources(cfg.synth);
      grid.push_back({mha_tiles, ffn_tiles, report.fmax_mhz,
                      report.latency_ms,
                      resources.fits(hw::alveo_u55c().budget)});
      min_latency = std::min(min_latency, report.latency_ms);
    }
  }

  util::Table table({"Tiles in MHA", "Tiles in FFN", "TS_MHA", "TS_FFN",
                     "Freq (MHz)", "Latency (norm.)", "Fits U55C"});
  table.set_title(
      "FIG. 7 — frequency and normalized latency vs tile counts "
      "(BERT variant, d=768, h=8, N=12, SL=64)");
  util::CsvWriter csv(bench::results_dir() + "/fig7_tile_sweep.csv",
                      {"mha_tiles", "ffn_tiles", "ts_mha", "ts_ffn",
                       "fmax_mhz", "latency_ms", "latency_normalized",
                       "fits_u55c"});

  const Point* best = nullptr;
  for (const auto& p : grid) {
    const double norm = p.latency_ms / min_latency;
    if (norm == 1.0) best = &p;
    table.row({std::to_string(p.mha_tiles), std::to_string(p.ffn_tiles),
               std::to_string(bert.d_model / p.mha_tiles),
               std::to_string(static_cast<uint32_t>(std::ceil(
                   static_cast<double>(bert.d_model) / p.ffn_tiles))),
               bench::fmt(p.fmax, 0), bench::fmt(norm, 2),
               p.fits ? "yes" : "no"});
    csv.row({std::to_string(p.mha_tiles), std::to_string(p.ffn_tiles),
             std::to_string(bert.d_model / p.mha_tiles),
             std::to_string(static_cast<uint32_t>(std::ceil(
                 static_cast<double>(bert.d_model) / p.ffn_tiles))),
             bench::fmt(p.fmax, 1), bench::fmt(p.latency_ms, 2),
             bench::fmt(norm, 4), p.fits ? "1" : "0"});
  }

  std::printf("%s\n", table.to_string().c_str());
  if (best != nullptr) {
    std::printf(
        "Optimum: %u tiles in MHA, %u tiles in FFN at %.0f MHz — the "
        "paper's reported sweet spot\n(12 tiles MHA / 6 tiles FFN, "
        "200 MHz; TS_MHA=64, TS_FFN=128).\n",
        best->mha_tiles, best->ffn_tiles, best->fmax);
  }
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
