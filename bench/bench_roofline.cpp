// Roofline placement of every evaluated workload: arithmetic intensity
// vs achieved throughput against the U55C's compute and bandwidth roofs.
// Quantifies the paper's claim that tile-load/compute overlap hides the
// memory system (true exactly when workloads sit right of the ridge).
#include <cstdio>

#include "bench_common.hpp"
#include "hw/roofline.hpp"
#include "ref/model_zoo.hpp"

int main() {
  using namespace protea;

  util::Table table({"Workload", "Ops/byte", "Achieved GOPS",
                     "Compute roof", "BW roof (GB/s)", "Ridge",
                     "Regime"});
  table.set_title(
      "ROOFLINE — Table I/II workloads on the synthesized U55C "
      "configuration (8 HBM channels)");
  util::CsvWriter csv(bench::results_dir() + "/roofline.csv",
                      {"workload", "intensity", "achieved_gops",
                       "peak_gops", "peak_bw_gbps", "ridge",
                       "compute_bound", "channels"});

  auto emit = [&](const ref::ModelConfig& model, uint32_t channels) {
    accel::AccelConfig cfg;
    cfg.synth.hbm_channels_used = channels;
    const auto report = accel::estimate_performance(cfg, model);
    const auto point = hw::make_roofline_point(
        cfg.synth, report.fmax_mhz,
        model.name + " (" + std::to_string(channels) + "ch)", report.ops,
        report.bytes_loaded, report.latency_ms);
    table.row({point.name, bench::fmt(point.arithmetic_intensity, 1),
               bench::fmt(point.achieved_gops, 1),
               bench::fmt(point.peak_compute_gops, 0),
               bench::fmt(point.peak_bandwidth_gbps, 0),
               bench::fmt(point.ridge_intensity, 1),
               point.compute_bound ? "compute-bound" : "BW-bound"});
    csv.row({point.name, bench::fmt(point.arithmetic_intensity, 3),
             bench::fmt(point.achieved_gops, 2),
             bench::fmt(point.peak_compute_gops, 1),
             bench::fmt(point.peak_bandwidth_gbps, 1),
             bench::fmt(point.ridge_intensity, 3),
             point.compute_bound ? "1" : "0", std::to_string(channels)});
  };

  for (const auto& name : ref::model_names()) {
    emit(ref::find_model(name), 8);
  }
  // The flagship workload under a starved memory system.
  emit(ref::bert_variant(), 1);

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The large gap between achieved GOPS and the compute roof is the "
      "paper's own Table I story:\nthe pipeline-off outer loops and "
      "fill/flush overhead cap per-engine efficiency, which is why\n"
      "ProTEA's 53 GOPS sits well under the 1434 GOPS peak of its 3584 "
      "PEs.\n");
  std::printf("CSV written to bench_results/roofline.csv\n");
  return 0;
}
