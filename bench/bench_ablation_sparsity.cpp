// Ablation: what would sparsity buy ProTEA? (the paper's §V discussion,
// quantified).
//
// Prunes the BERT-variant weights at increasing sparsity with both
// methods, measures the FFN tile occupancy under ProTEA's TS_FFN=128
// tiling, and compares three latencies:
//   dense        — ProTEA as built (what the paper ships),
//   tile-skip    — a hypothetical variant skipping all-zero weight tiles,
//   ideal (1-s)  — the paper's back-of-envelope bound (4.48*(1-0.9) etc.)
// plus the quantized-accuracy cost of pruning on a small model.
#include <cstdio>

#include "accel/accelerator.hpp"
#include "baseline/pruning.hpp"
#include "bench_common.hpp"
#include "ref/encoder.hpp"
#include "ref/model_zoo.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace protea;

  const accel::AccelConfig cfg;
  const auto bert = ref::bert_variant();

  util::Table table({"Sparsity", "Method", "Tile occupancy (f1/f2/f3)",
                     "Dense ms", "Tile-skip ms", "Ideal (1-s) ms",
                     "Skip speedup"});
  table.set_title(
      "ABLATION — structured sparsity under ProTEA's FFN tiling "
      "(BERT variant, TS_FFN=128)");
  util::CsvWriter csv(bench::results_dir() + "/ablation_sparsity.csv",
                      {"sparsity", "method", "occ_ffn1", "occ_ffn2",
                       "occ_ffn3", "dense_ms", "skip_ms", "ideal_ms",
                       "speedup"});

  const auto dense_report = accel::estimate_performance(cfg, bert);
  for (double sparsity : {0.0, 0.5, 0.7, 0.9, 0.93}) {
    for (auto method : {baseline::PruneMethod::kMagnitude,
                        baseline::PruneMethod::kColumnBalancedBlock}) {
      auto weights = ref::make_random_weights(bert, 11);
      if (sparsity > 0.0) {
        baseline::prune_encoder_weights(weights, sparsity, method);
      }
      const auto occ =
          baseline::ffn_tile_occupancy(weights.layers[0], cfg.synth.ts_ffn);
      const accel::FfnStageOccupancy stage_occ{occ.ffn1, occ.ffn2,
                                               occ.ffn3};
      const auto skip_report =
          accel::estimate_sparse_performance(cfg, bert, stage_occ);
      const double ideal_ms = dense_report.latency_ms * (1.0 - sparsity);
      const char* method_name =
          method == baseline::PruneMethod::kMagnitude ? "magnitude"
                                                      : "col-balanced";

      table.row({bench::fmt(sparsity * 100, 0) + "%", method_name,
                 bench::fmt(occ.ffn1, 2) + "/" + bench::fmt(occ.ffn2, 2) +
                     "/" + bench::fmt(occ.ffn3, 2),
                 bench::fmt(dense_report.latency_ms, 0),
                 bench::fmt(skip_report.latency_ms, 0),
                 bench::fmt(ideal_ms, 0),
                 bench::fmt(dense_report.latency_ms /
                                skip_report.latency_ms,
                            2) +
                     "x"});
      csv.row({bench::fmt(sparsity, 2), method_name,
               bench::fmt(occ.ffn1, 4), bench::fmt(occ.ffn2, 4),
               bench::fmt(occ.ffn3, 4),
               bench::fmt(dense_report.latency_ms, 2),
               bench::fmt(skip_report.latency_ms, 2),
               bench::fmt(ideal_ms, 2),
               bench::fmt(dense_report.latency_ms /
                              skip_report.latency_ms,
                          3)});
      if (sparsity == 0.0) break;  // methods identical when not pruning
    }
    // Third method: tile-structured pruning — the granularity the
    // tile-skipping controller can actually exploit.
    if (sparsity > 0.0) {
      auto weights = ref::make_random_weights(bert, 11);
      for (auto& layer : weights.layers) {
        baseline::prune_tiles(layer.wo, sparsity, cfg.synth.ts_ffn);
        baseline::prune_tiles(layer.w1, sparsity, cfg.synth.ts_ffn);
        baseline::prune_tiles(layer.w2, sparsity, cfg.synth.ts_ffn);
      }
      const auto occ =
          baseline::ffn_tile_occupancy(weights.layers[0], cfg.synth.ts_ffn);
      const auto skip_report = accel::estimate_sparse_performance(
          cfg, bert, {occ.ffn1, occ.ffn2, occ.ffn3});
      const double ideal_ms = dense_report.latency_ms * (1.0 - sparsity);
      table.row({bench::fmt(sparsity * 100, 0) + "%", "tile-structured",
                 bench::fmt(occ.ffn1, 2) + "/" + bench::fmt(occ.ffn2, 2) +
                     "/" + bench::fmt(occ.ffn3, 2),
                 bench::fmt(dense_report.latency_ms, 0),
                 bench::fmt(skip_report.latency_ms, 0),
                 bench::fmt(ideal_ms, 0),
                 bench::fmt(dense_report.latency_ms /
                                skip_report.latency_ms,
                            2) +
                     "x"});
      csv.row({bench::fmt(sparsity, 2), "tile-structured",
               bench::fmt(occ.ffn1, 4), bench::fmt(occ.ffn2, 4),
               bench::fmt(occ.ffn3, 4),
               bench::fmt(dense_report.latency_ms, 2),
               bench::fmt(skip_report.latency_ms, 2),
               bench::fmt(ideal_ms, 2),
               bench::fmt(dense_report.latency_ms /
                              skip_report.latency_ms,
                          3)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Random pruning leaves almost every 128x128 tile occupied — "
      "tile-granular skipping captures\nnearly none of the ideal (1-s) "
      "bound. The paper's sparse competitors need fine-grained\nsparse "
      "architectures precisely because of this; ProTEA's dense choice "
      "trades that machinery\nfor runtime programmability.\n\n");

  // Accuracy side: quantized accelerator error vs pruning level (small
  // functional model so the int8 datapath actually runs).
  util::Table acc_table({"Sparsity", "RMS err (pruned float vs dense)",
                         "RMS err (int8 accel vs pruned float)"});
  acc_table.set_title("Accuracy cost of pruning (d=64, h=4, N=2, SL=16)");
  ref::ModelConfig small;
  small.seq_len = 16;
  small.d_model = 64;
  small.num_heads = 4;
  small.num_layers = 2;
  const auto dense_weights = ref::make_random_weights(small, 21);
  const auto input = ref::make_random_input(small, 22);
  const auto dense_out = ref::Encoder(dense_weights).forward(input);
  for (double sparsity : {0.0, 0.5, 0.9}) {
    auto pruned = dense_weights;
    if (sparsity > 0.0) {
      baseline::prune_encoder_weights(
          pruned, sparsity, baseline::PruneMethod::kColumnBalancedBlock);
    }
    const auto pruned_out = ref::Encoder(pruned).forward(input);
    accel::ProteaAccelerator accelerator(cfg);
    accelerator.load_model(accel::prepare_model(pruned, input));
    const auto accel_out = accelerator.forward(input);
    acc_table.row({bench::fmt(sparsity * 100, 0) + "%",
                   bench::fmt(tensor::rms_diff(pruned_out, dense_out), 3),
                   bench::fmt(tensor::rms_diff(accel_out, pruned_out), 3)});
  }
  std::printf("%s\n", acc_table.to_string().c_str());
  std::printf("CSV written to bench_results/ablation_sparsity.csv\n");
  return 0;
}
