// Google-benchmark microbenchmarks of the quantization substrate.
#include <benchmark/benchmark.h>

#include <vector>

#include "numeric/quantizer.hpp"
#include "numeric/requantize.hpp"
#include "util/rng.hpp"

namespace {

using namespace protea;

std::vector<float> random_data(size_t n) {
  std::vector<float> data(n);
  util::Xoshiro256 rng(99);
  for (auto& x : data) x = static_cast<float>(rng.normal());
  return data;
}

void BM_Calibrate(benchmark::State& state) {
  const auto data = random_data(static_cast<size_t>(state.range(0)));
  numeric::Quantizer q(8, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.calibrate(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Calibrate)->Arg(4096)->Arg(589824);  // 768x768

void BM_QuantizeInt8(benchmark::State& state) {
  const auto data = random_data(static_cast<size_t>(state.range(0)));
  std::vector<int8_t> out(data.size());
  numeric::Quantizer q(8, true);
  q.calibrate(data);
  for (auto _ : state) {
    q.quantize(data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeInt8)->Arg(4096)->Arg(589824);

void BM_Requantize(benchmark::State& state) {
  const auto params = numeric::make_requant_params(0.0173);
  int64_t acc = -123456;
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::requantize(acc, params, -128, 127));
    acc += 7919;
    if (acc > 1000000) acc = -1000000;
  }
}
BENCHMARK(BM_Requantize);

void BM_RequantizePow2(benchmark::State& state) {
  int64_t acc = -123456;
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::requantize_pow2(acc, 7, -128, 127));
    acc += 7919;
    if (acc > 1000000) acc = -1000000;
  }
}
BENCHMARK(BM_RequantizePow2);

}  // namespace

BENCHMARK_MAIN();
