// Google-benchmark microbenchmarks of the float kernels that back the
// reference encoder and the measured CPU baseline.
#include <benchmark/benchmark.h>

#include "baseline/cpu_encoder.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace protea;

tensor::MatrixF random_matrix(size_t r, size_t c, uint64_t seed) {
  tensor::MatrixF m(r, c);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) x = static_cast<float>(rng.uniform(-1, 1));
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulBt(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto a = random_matrix(n, n, 3);
  const auto b = random_matrix(n, n, 4);
  for (auto _ : state) {
    auto c = tensor::matmul_bt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulBt)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  auto m = random_matrix(64, 64, 5);
  for (auto _ : state) {
    auto copy = m;
    tensor::softmax_rows_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_LayerNormRows(benchmark::State& state) {
  auto m = random_matrix(64, 768, 6);
  std::vector<float> gamma(768, 1.0f), beta(768, 0.0f);
  for (auto _ : state) {
    auto copy = m;
    tensor::layer_norm_rows_inplace(copy, gamma, beta);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_LayerNormRows);

void BM_CpuEncoderLayer(benchmark::State& state) {
  ref::ModelConfig cfg;
  cfg.seq_len = 32;
  cfg.d_model = 128;
  cfg.num_heads = 4;
  cfg.num_layers = 1;
  const auto weights = ref::make_random_weights(cfg, 7);
  const auto input = ref::make_random_input(cfg, 8);
  baseline::CpuEncoder cpu(weights, 0);
  for (auto _ : state) {
    auto out = cpu.forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CpuEncoderLayer);

}  // namespace

BENCHMARK_MAIN();
