// Google-benchmark microbenchmarks of the GEMM kernel layer: the packed
// int8 kernels (tensor/qgemm.hpp) the engines run on, their retained naive
// baselines, and the float kernels behind the reference encoder and the
// measured CPU baseline.
//
// Besides the google-benchmark console/CSV output, main() emits a
// machine-readable bench_results/BENCH_gemm.json (kernel, shape, threads,
// GMAC/s, speedup vs. the naive seed loop) so the perf trajectory can be
// tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/cpu_encoder.hpp"
#include "bench_common.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"
#include "tensor/qgemm.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace protea;

tensor::MatrixF random_matrix(size_t r, size_t c, uint64_t seed) {
  tensor::MatrixF m(r, c);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) x = static_cast<float>(rng.uniform(-1, 1));
  return m;
}

tensor::MatrixI8 random_i8(size_t r, size_t c, uint64_t seed) {
  tensor::MatrixI8 m(r, c);
  util::Xoshiro256 rng(seed);
  for (auto& x : m.flat()) {
    x = static_cast<int8_t>(static_cast<int32_t>(rng.bounded(256)) - 128);
  }
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulBt(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto a = random_matrix(n, n, 3);
  const auto b = random_matrix(n, n, 4);
  for (auto _ : state) {
    auto c = tensor::matmul_bt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulBt)->Arg(64)->Arg(128);

void BM_Transpose(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto a = random_matrix(n, n, 5);
  for (auto _ : state) {
    auto t = tensor::transpose(a);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(1024);

void BM_QGemmNaive(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto a = random_i8(n, n, 11);
  const auto b = random_i8(n, n, 12);
  tensor::MatrixI32 c;
  for (auto _ : state) {
    tensor::qgemm_naive(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_QGemmNaive)->Arg(256);

void BM_QGemm(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto a = random_i8(n, n, 13);
  const auto b = random_i8(n, n, 14);
  tensor::MatrixI32 c;
  for (auto _ : state) {
    tensor::qgemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_QGemm)->Arg(256)->Arg(512);

void BM_QGemmThreaded(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  const auto a = random_i8(n, n, 15);
  const auto b = random_i8(n, n, 16);
  util::ThreadPool pool(threads);
  tensor::MatrixI32 c;
  for (auto _ : state) {
    tensor::qgemm(a, b, c, &pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_QGemmThreaded)->Args({512, 2})->Args({512, 4});

void BM_SoftmaxRows(benchmark::State& state) {
  auto m = random_matrix(64, 64, 5);
  for (auto _ : state) {
    auto copy = m;
    tensor::softmax_rows_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_LayerNormRows(benchmark::State& state) {
  auto m = random_matrix(64, 768, 6);
  std::vector<float> gamma(768, 1.0f), beta(768, 0.0f);
  for (auto _ : state) {
    auto copy = m;
    tensor::layer_norm_rows_inplace(copy, gamma, beta);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_LayerNormRows);

void BM_CpuEncoderLayer(benchmark::State& state) {
  ref::ModelConfig cfg;
  cfg.seq_len = 32;
  cfg.d_model = 128;
  cfg.num_heads = 4;
  cfg.num_layers = 1;
  const auto weights = ref::make_random_weights(cfg, 7);
  const auto input = ref::make_random_input(cfg, 8);
  baseline::CpuEncoder cpu(weights, 0);
  for (auto _ : state) {
    auto out = cpu.forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CpuEncoderLayer);

// --- BENCH_gemm.json ---------------------------------------------------------

struct JsonResult {
  std::string kernel;
  size_t m, k, n, threads;
  double ms, gmacs;
};

template <typename Fn>
JsonResult time_kernel(const std::string& kernel, size_t m, size_t k,
                       size_t n, size_t threads, int reps, const Fn& fn) {
  fn();  // warm-up
  const double ms = bench::median_time_ms(reps, fn);
  const double gmacs = static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n) / (ms * 1e-3) / 1e9;
  return {kernel, m, k, n, threads, ms, gmacs};
}

void emit_bench_gemm_json() {
  std::vector<JsonResult> results;

  {
    const size_t n = 256;
    const auto a = random_i8(n, n, 21);
    const auto b = random_i8(n, n, 22);
    tensor::MatrixI32 c;
    results.push_back(time_kernel("qgemm_naive", n, n, n, 1, 5,
                                  [&] { tensor::qgemm_naive(a, b, c); }));
    results.push_back(time_kernel("qgemm", n, n, n, 1, 20,
                                  [&] { tensor::qgemm(a, b, c); }));
    results.push_back(time_kernel("qgemm_bt", n, n, n, 1, 20,
                                  [&] { tensor::qgemm_bt(a, b, c); }));
  }
  {
    const size_t n = 512;
    const auto a = random_i8(n, n, 23);
    const auto b = random_i8(n, n, 24);
    tensor::MatrixI32 c;
    results.push_back(time_kernel("qgemm", n, n, n, 1, 5,
                                  [&] { tensor::qgemm(a, b, c); }));
    for (size_t threads : {2, 4}) {
      util::ThreadPool pool(threads);
      results.push_back(time_kernel("qgemm", n, n, n, threads, 5, [&] {
        tensor::qgemm(a, b, c, &pool);
      }));
    }
  }
  {
    const size_t n = 256;
    const auto a = random_matrix(n, n, 25);
    const auto b = random_matrix(n, n, 26);
    results.push_back(time_kernel("sgemm", n, n, n, 1, 10, [&] {
      auto c = tensor::matmul(a, b);
      benchmark::DoNotOptimize(c.data());
    }));
  }

  double naive_256 = 0.0, packed_256 = 0.0;
  for (const auto& r : results) {
    if (r.m != 256 || r.threads != 1) continue;
    if (r.kernel == "qgemm_naive") naive_256 = r.ms;
    if (r.kernel == "qgemm") packed_256 = r.ms;
  }
  const double speedup = packed_256 > 0.0 ? naive_256 / packed_256 : 0.0;

  char buf[128];
  std::vector<protea::bench::BenchRecord> records;
  for (const auto& r : results) {
    std::snprintf(buf, sizeof(buf), "%s_%zux%zux%zu_t%zu",
                  r.kernel.c_str(), r.m, r.k, r.n, r.threads);
    records.push_back({buf, "latency", r.ms, "ms"});
    records.push_back({buf, "throughput", r.gmacs, "GMAC/s"});
  }
  records.push_back(
      {"qgemm_256x256x256_t1_vs_naive", "speedup", speedup, "x"});
  protea::bench::write_bench_records("BENCH_gemm.json", "bench_gemm_micro",
                                     records);
  std::printf("qgemm 256^3 speedup vs naive: %.2fx\n", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_bench_gemm_json();
  return 0;
}
