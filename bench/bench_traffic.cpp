// Fault-injecting traffic stress harness (the PR-6 robustness gate).
//
// A seeded synthetic trace (bursty Poisson arrivals, bounded-Pareto
// heavy-tailed lengths, greedy/sampled/beam policy mix with priorities
// and deadlines) drives the TrafficEngine through an overload scenario:
// a deliberately undersized KV pool, an overload watermark, a swap side
// buffer of one, and an injected pool-exhaustion storm (failpoints).
// The run is graded, not just timed — the process exits non-zero unless
// every invariant holds:
//
//   1. every request that completes under preemption/faults is
//      BIT-IDENTICAL to its unconstrained solo reference (swap-out and
//      drop-and-recompute are invisible in the bits);
//   2. the threaded run reproduces the stepped run exactly — outputs
//      AND SchedulerStats (only wall-clock differs);
//   3. the storm actually exercised the machinery: >= 1 preemption,
//      >= 1 shed, >= 1 deadline miss (and >= 1 failpoint trip when
//      PROTEA_FAILPOINTS is compiled in);
//   4. a beam group preempted mid-decode restores to the exact
//      hypotheses of an unpreempted run.
//
// Emits BENCH_traffic.json (p50/p99 latency, goodput, preemption /
// shed / deadline-miss counts, bit-identity results) in the unified
// record schema. `--ci` tags the records for the sanitizer stress job.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "bench_common.hpp"
#include "ref/weights.hpp"
#include "runtime/decode_policy.hpp"
#include "runtime/generation.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/traffic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace protea;

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

/// Small decoder + vocabulary the whole harness runs against.
struct Harness {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;
  tensor::MatrixF head, embed;
  runtime::VocabModel vocab;

  Harness() {
    cfg.name = "traffic-small";
    cfg.seq_len = 24;
    cfg.d_model = 48;
    cfg.num_heads = 4;
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, 6001);
    memory = random_input(6, cfg.d_model, 6002);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, 6003);
    qd = accel::prepare_decoder(weights, calib, memory);
    util::Xoshiro256 rng(6007);
    const uint32_t vocab_size = 32;
    head = tensor::MatrixF(vocab_size, cfg.d_model);
    embed = tensor::MatrixF(vocab_size, cfg.d_model);
    for (float& x : head.flat()) x = static_cast<float>(rng.normal());
    for (float& x : embed.flat()) {
      x = static_cast<float>(rng.normal() * 0.5);
    }
    vocab.head = &head;
    vocab.embed = &embed;
  }

  tensor::MatrixF embed_rows(std::span<const uint32_t> tokens) const {
    tensor::MatrixF m(tokens.size(), cfg.d_model);
    for (size_t r = 0; r < tokens.size(); ++r) {
      std::copy(embed.row(tokens[r]).begin(), embed.row(tokens[r]).end(),
                m.row(r).begin());
    }
    return m;
  }
};

/// One scenario's requests plus the TokenStreams that back their
/// next_token callbacks (streams are stateful, so every run builds a
/// fresh set — determinism comes from the per-item policy seed).
struct BuiltRequests {
  std::vector<runtime::TrafficRequest> reqs;
  std::vector<std::unique_ptr<runtime::TokenStream>> streams;
};

/// `shared_rows` > 0 selects the storm's shared-prefix mode: items
/// carrying a shared_prefix_id start with that system prompt's token
/// block (seeded by the id alone, so every request on the same id embeds
/// byte-identical prefix rows — the radix cache's hit condition) before
/// their per-request unique tail.
BuiltRequests build_requests(const Harness& hx,
                             const std::vector<runtime::TraceItem>& items,
                             uint32_t shared_rows = 0) {
  BuiltRequests out;
  out.reqs.reserve(items.size());
  out.streams.reserve(items.size());
  for (const auto& item : items) {
    util::Xoshiro256 rng(item.policy_seed);
    std::vector<uint32_t> prompt(item.prompt_rows);
    size_t row = 0;
    if (shared_rows > 0 && item.shared_prefix_id != UINT32_MAX) {
      util::Xoshiro256 srng(0x5EEDF00Dull + item.shared_prefix_id);
      for (; row < shared_rows && row < prompt.size(); ++row) {
        prompt[row] = static_cast<uint32_t>(srng.bounded(hx.vocab.vocab_size()));
      }
    }
    for (; row < prompt.size(); ++row) {
      prompt[row] = static_cast<uint32_t>(rng.bounded(hx.vocab.vocab_size()));
    }
    runtime::DecodePolicy policy;
    if (item.sampled) {
      policy.sample = true;
      policy.temperature = 1.2f;
      policy.top_k = 8;
      policy.seed = item.policy_seed;
    }
    auto stream = std::make_unique<runtime::TokenStream>(policy, hx.vocab,
                                                         hx.cfg.seq_len);
    stream->reset(prompt);

    runtime::TrafficRequest req;
    req.gen.prefix = hx.embed_rows(prompt);
    req.gen.memory = &hx.memory;
    req.gen.max_new_tokens = item.max_new;
    req.gen.next_token = stream->callback();
    req.priority = item.priority;
    req.arrival_round = item.arrival_round;
    req.deadline_rounds = item.deadline_rounds;
    req.cancel_on_deadline = item.cancel_on_deadline;
    out.reqs.push_back(std::move(req));
    out.streams.push_back(std::move(stream));
  }
  return out;
}

bool rows_equal(const tensor::MatrixF& a, const tensor::MatrixF& b,
                size_t rows) {
  if (a.rows() < rows || b.rows() < rows || a.cols() != b.cols()) {
    return false;
  }
  for (size_t r = 0; r < rows; ++r) {
    if (std::memcmp(a.row(r).data(), b.row(r).data(),
                    a.cols() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

struct Gate {
  bool ok = true;
  void require(bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      ok = false;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  // --ci tags the emitted records for the CI stress job; the trace is
  // small enough (sub-second in Release, seconds under sanitizers) that
  // the workload itself is identical — same seed, same gates.
  // --trace <path> arms runtime telemetry on the storms and writes the
  // merged Chrome trace-event JSON there (chrome://tracing / Perfetto).
  bool ci = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--ci") ci = true;
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }

  // Unconfigured bundles are inert, so the engines can take the
  // pointers unconditionally; configure() only runs when tracing was
  // requested (it throws by contract when PROTEA_TELEMETRY is off).
  runtime::Telemetry tel_stepped, tel_threaded, tel_pstep, tel_pthr;
  if (!trace_path.empty()) {
#ifdef PROTEA_TELEMETRY
    tel_stepped.configure();
    tel_threaded.configure();
    tel_pstep.configure();
    tel_pthr.configure();
#else
    std::fprintf(stderr,
                 "bench_traffic: --trace ignored (PROTEA_TELEMETRY off)\n");
    trace_path.clear();
#endif
  }

  Harness hx;
  Gate gate;
  std::vector<bench::BenchRecord> records;

  // --- seeded trace ----------------------------------------------------------
  runtime::TraceConfig trace_cfg;
  trace_cfg.requests = 56;
  trace_cfg.mean_interarrival_rounds = 1.0;  // faster than service: overload
  trace_cfg.burst_prob = 0.2;
  trace_cfg.burst_factor = 6.0;
  trace_cfg.heavy_tail_alpha = 1.1;
  trace_cfg.min_prompt = 1;
  trace_cfg.max_prompt = 10;
  trace_cfg.min_new = 1;
  trace_cfg.max_new = 10;
  trace_cfg.sampled_fraction = 0.35;
  trace_cfg.beam_fraction = 0.1;
  trace_cfg.interactive_fraction = 0.25;
  trace_cfg.batch_fraction = 0.25;
  trace_cfg.deadline_fraction = 0.6;
  trace_cfg.deadline_slack = 0.8;
  trace_cfg.cancel_on_deadline_fraction = 0.1;
  trace_cfg.seed = 20260807;
  const auto trace = runtime::generate_trace(trace_cfg);

  std::vector<runtime::TraceItem> engine_items, beam_items;
  for (const auto& item : trace) {
    (item.beam ? beam_items : engine_items).push_back(item);
  }
  gate.require(!beam_items.empty(), "trace contains a beam request");

  // --- solo references (unconstrained bits, one request at a time) ----------
  runtime::GenerationScheduler ref_sched(hx.acfg, hx.qd);
  auto ref_built = build_requests(hx, engine_items);
  std::vector<runtime::GenerationRequest> ref_gens;
  ref_gens.reserve(ref_built.reqs.size());
  for (auto& r : ref_built.reqs) ref_gens.push_back(r.gen);
  runtime::GenerationSchedulerOptions ref_opts;
  ref_opts.slots = 1;  // strictly sequential, private dense caches
  ref_opts.kv_block_rows = 0;
  const auto reference = ref_sched.run(ref_gens, ref_opts);

  // --- overload scenario (stepped, then threaded) ----------------------------
  runtime::TrafficOptions overload;
  overload.slots = 6;
  overload.prefill_chunk = 2;
  overload.kv_block_rows = 4;
  overload.kv_pool_blocks = 10;  // far below the working set: contention
  overload.recovery = runtime::PreemptionRecovery::kAuto;
  overload.swap_slots = 1;  // second concurrent victim must recompute
  overload.shed_queue_depth = 6;
  overload.stall_limit = 64;
#ifdef PROTEA_FAILPOINTS
  overload.fail_skip = 24;  // let the pool warm up, then storm
  overload.fail_count = 12;
#endif

  overload.telemetry = &tel_stepped;

  runtime::TrafficEngine engine(hx.acfg, hx.qd);
  auto stepped_built = build_requests(hx, engine_items);
  const auto stepped = engine.run(stepped_built.reqs, overload);
  const auto stepped_stats = engine.last_run();

  runtime::TrafficOptions threaded_opts = overload;
  threaded_opts.threads = 4;
  threaded_opts.mha_slots = 2;
  threaded_opts.ffn_slots = 2;
  threaded_opts.telemetry = &tel_threaded;
  auto threaded_built = build_requests(hx, engine_items);
  const auto threaded = engine.run(threaded_built.reqs, threaded_opts);
  const auto threaded_stats = engine.last_run();

  // Telemetry gate: the recorded virtual-time event sequence is
  // bit-identical between the modes (wall_ns is a non-compared
  // annotation), and the storm left every lifecycle stage in the trace.
  if (tel_stepped.enabled()) {
    gate.require(runtime::virtual_equal(tel_stepped.trace.snapshot(),
                                        tel_threaded.trace.snapshot()),
                 "storm virtual-time trace identical stepped vs threaded");
    using TE = runtime::TraceEventType;
    for (const TE t : {TE::kAdmit, TE::kShed, TE::kPreempt, TE::kSwapOut,
                       TE::kSwapIn, TE::kRestore, TE::kDeadlineMiss,
                       TE::kComplete, TE::kPoolOccupancy}) {
      const std::string what =
          std::string("storm trace covers ") + runtime::trace_event_name(t);
      gate.require(tel_stepped.trace.count(t) >= 1, what.c_str());
    }
  }

  // Gate 1: completed bits match the solo references; cancelled requests
  // return an exact prefix of them.
  size_t completed = 0, late = 0, shed = 0, cancelled = 0;
  std::vector<double> lat_rounds, lat_ms;
  uint64_t ontime_tokens = 0;
  for (size_t i = 0; i < stepped.size(); ++i) {
    const auto& res = stepped[i];
    const auto& ref = reference[i];
    switch (res.outcome) {
      case runtime::TrafficOutcome::kCompleted:
      case runtime::TrafficOutcome::kCompletedLate: {
        const bool is_late =
            res.outcome == runtime::TrafficOutcome::kCompletedLate;
        completed += 1;
        late += is_late ? 1 : 0;
        gate.require(res.steps == ref.steps, "completed request step count");
        gate.require(res.states.rows() == ref.states.rows() &&
                         rows_equal(res.states, ref.states, ref.states.rows()),
                     "completed request bit-identical to solo reference");
        lat_rounds.push_back(static_cast<double>(res.latency_rounds));
        lat_ms.push_back(res.latency_ms);
        if (!is_late) ontime_tokens += res.steps;
        break;
      }
      case runtime::TrafficOutcome::kCancelled:
        cancelled += 1;
        gate.require(rows_equal(res.states, ref.states, res.states.rows()),
                     "cancelled request returns an exact computed prefix");
        break;
      case runtime::TrafficOutcome::kShedOverload:
      case runtime::TrafficOutcome::kShedDeadline:
      case runtime::TrafficOutcome::kShedCapacity:
        shed += 1;
        gate.require(!res.shed_reason.empty(), "shed carries a reason");
        break;
      case runtime::TrafficOutcome::kFailed:
        gate.require(false, "no unit failures in the storm");
        break;
      default:
        gate.require(false, "request reached a terminal outcome");
    }
  }

  // Gate 2: threaded == stepped, bit for bit (wall clock excepted).
  bool modes_match = threaded.size() == stepped.size();
  for (size_t i = 0; modes_match && i < stepped.size(); ++i) {
    const auto& a = stepped[i];
    const auto& b = threaded[i];
    modes_match = a.outcome == b.outcome && a.steps == b.steps &&
                  a.shed_reason == b.shed_reason &&
                  a.admitted_round == b.admitted_round &&
                  a.retired_round == b.retired_round &&
                  a.latency_rounds == b.latency_rounds &&
                  a.preemptions == b.preemptions &&
                  a.deadline_missed == b.deadline_missed &&
                  a.states.rows() == b.states.rows() &&
                  rows_equal(a.states, b.states, a.states.rows());
  }
  for (size_t c = 0; c < runtime::kTrafficClasses; ++c) {
    const auto& a = stepped_stats.per_class[c];
    const auto& b = threaded_stats.per_class[c];
    modes_match = modes_match && std::memcmp(&a, &b, sizeof(a)) == 0;
  }
  modes_match = modes_match && stepped_stats.rounds == threaded_stats.rounds &&
                stepped_stats.decode_steps == threaded_stats.decode_steps &&
                stepped_stats.prefill_chunks == threaded_stats.prefill_chunks &&
                stepped_stats.replayed_rows == threaded_stats.replayed_rows &&
                stepped_stats.swap_bytes == threaded_stats.swap_bytes &&
                stepped_stats.kv_blocks_peak == threaded_stats.kv_blocks_peak &&
                stepped_stats.failpoint_trips ==
                    threaded_stats.failpoint_trips &&
                stepped_stats.max_active == threaded_stats.max_active;
  gate.require(modes_match, "threaded run reproduces stepped run exactly");

  // --- same storm, recovery forced to drop-and-recompute ---------------------
  // The kAuto storm above exercises the swap path (its side buffer has a
  // free slot at each eviction); this pass proves the other strategy on
  // the same trace: every preemption re-prefills from token history, and
  // the bits still match the solo references.
  runtime::TrafficOptions recompute_opts = overload;
  recompute_opts.recovery = runtime::PreemptionRecovery::kRecompute;
  recompute_opts.telemetry = nullptr;  // keep tel_stepped's ring storm-only
  auto recompute_built = build_requests(hx, engine_items);
  const auto recomputed = engine.run(recompute_built.reqs, recompute_opts);
  const auto recompute_stats = engine.last_run();
  for (size_t i = 0; i < recomputed.size(); ++i) {
    const auto& res = recomputed[i];
    if (res.outcome == runtime::TrafficOutcome::kCompleted ||
        res.outcome == runtime::TrafficOutcome::kCompletedLate) {
      gate.require(res.steps == reference[i].steps &&
                       res.states.rows() == reference[i].states.rows() &&
                       rows_equal(res.states, reference[i].states,
                                  reference[i].states.rows()),
                   "recompute-storm request bit-identical to solo reference");
    }
  }

  // Gate 3: the storm actually happened.
  using CS = runtime::TrafficClassStats;
  const uint64_t preemptions = stepped_stats.total(&CS::preemptions);
  const uint64_t swap_outs = stepped_stats.total(&CS::swap_outs);
  const uint64_t recomputes = recompute_stats.total(&CS::recomputes);
  const uint64_t deadline_misses = stepped_stats.total(&CS::deadline_misses);
  const uint64_t sheds = stepped_stats.total(&CS::shed_overload) +
                         stepped_stats.total(&CS::shed_deadline) +
                         stepped_stats.total(&CS::shed_capacity);
  gate.require(preemptions >= 1, "storm preempted at least one request");
  gate.require(swap_outs >= 1, "at least one swap-out recovery");
  gate.require(recomputes >= 1, "at least one drop-and-recompute recovery");
  gate.require(recompute_stats.total(&CS::swap_outs) == 0 &&
                   recompute_stats.swap_bytes == 0,
               "forced-recompute storm never touches the swap buffer");
  gate.require(recompute_stats.replayed_rows > 0,
               "recompute restores replayed rows through prefill");
  gate.require(sheds >= 1, "storm shed at least one request");
  gate.require(deadline_misses >= 1, "storm missed at least one deadline");
  gate.require(completed >= 1, "storm completed at least one request");
#ifdef PROTEA_FAILPOINTS
  gate.require(stepped_stats.failpoint_trips >= 1,
               "injected exhaustion storm fired");
#endif

  // --- beam group preemption under the same pool pressure --------------------
  const auto& bi = beam_items.front();
  util::Xoshiro256 brng(bi.policy_seed);
  std::vector<uint32_t> beam_prompt(std::max<uint32_t>(bi.prompt_rows, 1));
  for (uint32_t& t : beam_prompt) {
    t = static_cast<uint32_t>(brng.bounded(hx.vocab.vocab_size()));
  }
  runtime::BeamSearchOptions bopts;
  bopts.beam_width = 3;
  bopts.max_new_tokens = std::max<uint32_t>(bi.max_new, 4);
  bopts.kv_block_rows = 4;
  runtime::BeamSearchDecoder solo(hx.acfg, hx.qd, hx.vocab, bopts);
  const auto want = solo.generate(beam_prompt, hx.memory);

  runtime::KvBlockPool beam_pool;
  const size_t worst = runtime::beam_worst_case_blocks(
      beam_prompt.size(), bopts.max_new_tokens, bopts.beam_width,
      bopts.kv_block_rows, bopts.cow);
  beam_pool.configure(worst + 2, bopts.kv_block_rows,
                      size_t{hx.cfg.num_layers} * hx.cfg.num_heads * 2 *
                          (hx.cfg.d_model / hx.cfg.num_heads));
  bopts.kv_pool = &beam_pool;
  bool beam_fired = false;
  bopts.preempt_point = [&beam_fired](uint32_t generated) {
    if (generated == 2 && !beam_fired) {
      beam_fired = true;
      return true;
    }
    return false;
  };
  runtime::BeamSearchDecoder preempted(hx.acfg, hx.qd, hx.vocab, bopts);
  const auto got = preempted.generate(beam_prompt, hx.memory);
  bool beams_match = got.size() == want.size();
  for (size_t i = 0; beams_match && i < got.size(); ++i) {
    beams_match = got[i].tokens == want[i].tokens &&
                  got[i].sum_logprob == want[i].sum_logprob &&
                  got[i].finished == want[i].finished;
  }
  gate.require(beams_match, "preempted beam group restores bit-identically");
  gate.require(preempted.last_run().group_preemptions == 1,
               "beam group was preempted exactly once");
  gate.require(preempted.last_run().replayed_rows > 0,
               "beam restore replayed committed rows");

  // --- shared-prefix storm: radix adoption under the same pressure -----------
  // A second seeded trace where every request opens with one of four
  // distinct system prompts (8 shared rows) before its unique tail, run
  // with TrafficOptions::prefix_cache on over a deliberately undersized
  // pool with failpoints armed. Gates: completed/cancelled bits still
  // match the solo references, the threaded run reproduces the stepped
  // run exactly (prefix counters included), the cache actually fired
  // (hits, adopted rows, cross reuse, bytes saved), and the storm still
  // preempted/shed — adoption and LRU reclaim never deadlock admission.
  uint64_t px_hits = 0, px_rows = 0, px_bytes = 0, px_evictions = 0;
  size_t px_completed = 0, px_shed = 0;
  {
    runtime::TraceConfig pcfg;
    pcfg.requests = 40;
    pcfg.mean_interarrival_rounds = 1.0;
    pcfg.burst_prob = 0.2;
    pcfg.burst_factor = 5.0;
    pcfg.heavy_tail_alpha = 1.1;
    pcfg.min_prompt = 1;  // unique tail rows; the 8 shared rows stack on top
    pcfg.max_prompt = 4;
    pcfg.min_new = 1;
    pcfg.max_new = 8;
    pcfg.sampled_fraction = 0.3;
    pcfg.beam_fraction = 0.0;  // engine-only: the cache serves sessions
    pcfg.interactive_fraction = 0.25;
    pcfg.batch_fraction = 0.25;
    pcfg.deadline_fraction = 0.5;
    pcfg.deadline_slack = 0.8;
    pcfg.cancel_on_deadline_fraction = 0.1;
    pcfg.shared_prefix_count = 4;
    pcfg.shared_prefix_rows = 8;
    pcfg.seed = 20260808;
    const auto pitems = runtime::generate_trace(pcfg);

    auto pref_built = build_requests(hx, pitems, pcfg.shared_prefix_rows);
    std::vector<runtime::GenerationRequest> pref_gens;
    pref_gens.reserve(pref_built.reqs.size());
    for (auto& r : pref_built.reqs) pref_gens.push_back(r.gen);
    runtime::GenerationSchedulerOptions pref_opts;
    pref_opts.slots = 1;
    pref_opts.kv_block_rows = 0;
    const auto pref = ref_sched.run(pref_gens, pref_opts);

    runtime::TrafficOptions popts;
    popts.slots = 5;
    popts.prefill_chunk = 2;
    popts.kv_block_rows = 4;
    popts.kv_pool_blocks = 16;  // live set + cached prefixes cannot all fit
    popts.recovery = runtime::PreemptionRecovery::kAuto;
    popts.swap_slots = 1;
    popts.shed_queue_depth = 6;
    popts.stall_limit = 64;
    popts.prefix_cache = true;
    popts.telemetry = &tel_pstep;
#ifdef PROTEA_FAILPOINTS
    popts.fail_skip = 20;
    popts.fail_count = 8;
#endif
    auto pstep_built = build_requests(hx, pitems, pcfg.shared_prefix_rows);
    const auto pstep = engine.run(pstep_built.reqs, popts);
    const auto pstep_stats = engine.last_run();

    runtime::TrafficOptions pthr_opts = popts;
    pthr_opts.threads = 4;
    pthr_opts.mha_slots = 2;
    pthr_opts.ffn_slots = 2;
    pthr_opts.telemetry = &tel_pthr;
    auto pthr_built = build_requests(hx, pitems, pcfg.shared_prefix_rows);
    const auto pthr = engine.run(pthr_built.reqs, pthr_opts);
    const auto pthr_stats = engine.last_run();

    for (size_t i = 0; i < pstep.size(); ++i) {
      const auto& res = pstep[i];
      switch (res.outcome) {
        case runtime::TrafficOutcome::kCompleted:
        case runtime::TrafficOutcome::kCompletedLate:
          px_completed += 1;
          gate.require(res.steps == pref[i].steps &&
                           res.states.rows() == pref[i].states.rows() &&
                           rows_equal(res.states, pref[i].states,
                                      pref[i].states.rows()),
                       "shared-prefix completion bit-identical to solo ref");
          break;
        case runtime::TrafficOutcome::kCancelled:
          gate.require(rows_equal(res.states, pref[i].states,
                                  res.states.rows()),
                       "shared-prefix cancel returns an exact prefix");
          break;
        case runtime::TrafficOutcome::kShedOverload:
        case runtime::TrafficOutcome::kShedDeadline:
        case runtime::TrafficOutcome::kShedCapacity:
          px_shed += 1;
          break;
        default:
          gate.require(false, "shared-prefix request reached terminal state");
      }
    }

    bool pmatch = pthr.size() == pstep.size();
    for (size_t i = 0; pmatch && i < pstep.size(); ++i) {
      const auto& a = pstep[i];
      const auto& b = pthr[i];
      pmatch = a.outcome == b.outcome && a.steps == b.steps &&
               a.latency_rounds == b.latency_rounds &&
               a.preemptions == b.preemptions &&
               a.states.rows() == b.states.rows() &&
               rows_equal(a.states, b.states, a.states.rows());
    }
    pmatch = pmatch && pstep_stats.rounds == pthr_stats.rounds &&
             pstep_stats.prefix_hits == pthr_stats.prefix_hits &&
             pstep_stats.prefix_misses == pthr_stats.prefix_misses &&
             pstep_stats.prefix_rows_adopted ==
                 pthr_stats.prefix_rows_adopted &&
             pstep_stats.prefix_bytes_saved ==
                 pthr_stats.prefix_bytes_saved &&
             pstep_stats.cross_kv_hits == pthr_stats.cross_kv_hits &&
             pstep_stats.cross_kv_misses == pthr_stats.cross_kv_misses &&
             pstep_stats.prefix_evictions == pthr_stats.prefix_evictions &&
             pstep_stats.replayed_rows == pthr_stats.replayed_rows &&
             pstep_stats.kv_blocks_peak == pthr_stats.kv_blocks_peak &&
             pstep_stats.failpoint_trips == pthr_stats.failpoint_trips;
    gate.require(pmatch,
                 "shared-prefix threaded run reproduces stepped exactly");

    px_hits = pstep_stats.prefix_hits;
    px_rows = pstep_stats.prefix_rows_adopted;
    px_bytes = pstep_stats.prefix_bytes_saved;
    px_evictions = pstep_stats.prefix_evictions;
    const uint64_t px_preempt = pstep_stats.total(&CS::preemptions);
    gate.require(px_completed >= 1, "shared-prefix storm completed a request");
    gate.require(px_hits >= 1, "shared-prefix storm scored a prefix hit");
    gate.require(px_rows >= 1, "shared-prefix storm adopted cached rows");
    gate.require(pstep_stats.cross_kv_hits >= 1,
                 "shared-prefix storm reused cross projections");
    gate.require(px_bytes > 0, "shared-prefix storm saved K/V bytes");
    gate.require(px_preempt + px_shed >= 1,
                 "shared-prefix storm kept the pool under pressure");
#ifdef PROTEA_FAILPOINTS
    gate.require(pstep_stats.failpoint_trips >= 1,
                 "shared-prefix exhaustion storm fired");
#endif

    std::printf(
        "shared-prefix storm (%zu requests, %zu system prompts x %u rows): "
        "%zu completed, %zu shed, %llu preempted, %llu/%llu prefix "
        "hit/miss, %llu rows adopted, %llu bytes saved, %llu evictions, "
        "%llu cross reuses, stepped==threaded %s\n\n",
        pitems.size(), pcfg.shared_prefix_count, pcfg.shared_prefix_rows,
        px_completed, px_shed,
        static_cast<unsigned long long>(px_preempt),
        static_cast<unsigned long long>(px_hits),
        static_cast<unsigned long long>(pstep_stats.prefix_misses),
        static_cast<unsigned long long>(px_rows),
        static_cast<unsigned long long>(px_bytes),
        static_cast<unsigned long long>(px_evictions),
        static_cast<unsigned long long>(pstep_stats.cross_kv_hits),
        pmatch ? "yes" : "NO");

    // Telemetry gate: adoption, publication and eviction events are
    // part of the deterministic virtual-time sequence too.
    if (tel_pstep.enabled()) {
      gate.require(runtime::virtual_equal(tel_pstep.trace.snapshot(),
                                          tel_pthr.trace.snapshot()),
                   "prefix-storm virtual-time trace identical stepped vs "
                   "threaded");
      gate.require(
          tel_pstep.trace.count(runtime::TraceEventType::kPrefixAdopt) >= 1,
          "prefix-storm trace covers prefix-adopt");
      gate.require(
          tel_pstep.trace.count(runtime::TraceEventType::kPrefixPublish) >= 1,
          "prefix-storm trace covers prefix-publish");
    }

    // SchedulerStats go through the shared flattener (the same samples
    // scheduler_stats_json serializes) instead of hand-picked fields.
    const std::string pname =
        std::string("shared_prefix_storm_") + (ci ? "ci" : "full");
    records.push_back(
        {pname, "requests", static_cast<double>(pitems.size()), "count"});
    for (const auto& s : runtime::flatten_stats(pstep_stats)) {
      records.push_back({pname, s.metric, s.value, s.unit});
    }
    records.push_back(
        {pname, "stepped_equals_threaded", pmatch ? 1.0 : 0.0, "bool"});
  }

  // --- report ---------------------------------------------------------------
  const double goodput_tok_s =
      stepped_stats.wall_ms > 0.0
          ? static_cast<double>(ontime_tokens) / (stepped_stats.wall_ms * 1e-3)
          : 0.0;
  const char* mode = ci ? "ci" : "full";

  util::Table table({"Metric", "Value"});
  table.set_title("Traffic storm (" + std::string(mode) + " trace, " +
                  std::to_string(engine_items.size()) + " engine + " +
                  std::to_string(beam_items.size()) + " beam requests)");
  table.row({"completed (on time / late)", std::to_string(completed - late) +
                                               " / " + std::to_string(late)});
  table.row({"shed / cancelled",
             std::to_string(shed) + " / " + std::to_string(cancelled)});
  table.row({"preemptions (kAuto storm)",
             std::to_string(preemptions) + " (" + std::to_string(swap_outs) +
                 " swapped)"});
  table.row({"preemptions (forced-recompute storm)",
             std::to_string(recompute_stats.total(&CS::preemptions)) + " (" +
                 std::to_string(recomputes) + " recomputed, " +
                 std::to_string(recompute_stats.replayed_rows) +
                 " rows replayed)"});
  table.row({"deadline misses", std::to_string(deadline_misses)});
  table.row({"failpoint trips", std::to_string(stepped_stats.failpoint_trips)});
  table.row({"latency p50/p99 (rounds)",
             bench::fmt(percentile(lat_rounds, 50), 1) + " / " +
                 bench::fmt(percentile(lat_rounds, 99), 1)});
  table.row({"latency p50/p99 (ms)", bench::fmt(percentile(lat_ms, 50), 2) +
                                         " / " +
                                         bench::fmt(percentile(lat_ms, 99), 2)});
  table.row({"goodput (on-time tokens/s)", bench::fmt(goodput_tok_s, 1)});
  table.row({"stepped == threaded", modes_match ? "yes" : "NO"});
  std::printf("%s\n", table.to_string().c_str());

  // One line of machine-readable storm stats (the shared serializer
  // the JSON records below are flattened from).
  std::printf("storm stats: %s\n\n",
              runtime::scheduler_stats_json(stepped_stats).c_str());

  const std::string name = std::string("traffic_storm_") + mode;
  const auto count = [&](const char* metric, double value,
                         const char* unit = "count") {
    records.push_back({name, metric, value, unit});
  };
  // Every SchedulerStats counter — aggregate and per-class — lands in
  // the records through the shared flattener; only derived metrics
  // (latencies, goodput, gate verdicts) are emitted by hand.
  count("requests", static_cast<double>(engine_items.size()));
  for (const auto& s : runtime::flatten_stats(stepped_stats)) {
    records.push_back({name, s.metric, s.value, s.unit});
  }
  {
    const std::string rname = std::string("recompute_storm_") + mode;
    for (const auto& s : runtime::flatten_stats(recompute_stats)) {
      records.push_back({rname, s.metric, s.value, s.unit});
    }
  }
  count("latency_p50", percentile(lat_rounds, 50), "rounds");
  count("latency_p99", percentile(lat_rounds, 99), "rounds");
  count("latency_ms_p50", percentile(lat_ms, 50), "ms");
  count("latency_ms_p99", percentile(lat_ms, 99), "ms");
  count("goodput", goodput_tok_s, "tokens/s");
  count("bit_identical_vs_solo", gate.ok ? 1.0 : 0.0, "bool");
  count("stepped_equals_threaded", modes_match ? 1.0 : 0.0, "bool");
  records.push_back({std::string("beam_group_preemption_") + mode,
                     "bit_identical_restore", beams_match ? 1.0 : 0.0,
                     "bool"});
  records.push_back({std::string("beam_group_preemption_") + mode,
                     "replayed_rows",
                     static_cast<double>(preempted.last_run().replayed_rows),
                     "rows"});

  // Telemetry folds into the same record file: every registered
  // histogram's p50/p95/p99/mean/count plus the counters, under the
  // storm's record name. The merged Chrome trace (overload storm +
  // shared-prefix storm, the latter's sequences offset onto their own
  // span tracks) goes to --trace.
  if (tel_stepped.enabled()) {
    for (const auto& s : runtime::metric_samples(tel_stepped)) {
      records.push_back({name, s.name + "_" + s.metric, s.value, s.unit});
    }
  }
  if (!trace_path.empty() && tel_stepped.enabled()) {
    auto events = tel_stepped.trace.snapshot();
    auto pe = tel_pstep.trace.snapshot();
    for (auto& e : pe) {
      if (e.seq != runtime::kNoTraceSeq) e.seq += 1000;
    }
    events.insert(events.end(), pe.begin(), pe.end());
    runtime::write_chrome_trace(trace_path, events);
    std::printf("bench_traffic: wrote %zu trace events to %s\n",
                events.size(), trace_path.c_str());
  }

  const bool wrote =
      bench::write_bench_records("BENCH_traffic.json", "bench_traffic",
                                 records);
  if (!gate.ok) {
    std::fprintf(stderr, "bench_traffic: INVARIANT GATES FAILED\n");
    return 1;
  }
  std::printf("bench_traffic: all invariant gates passed\n");
  return wrote ? 0 : 1;
}
