// Shared helpers for the table/figure regeneration binaries.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "accel/perf_model.hpp"
#include "ref/model_config.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace protea::bench {

/// The paper's GOPS columns use a more generous operation-counting
/// convention than ops_total(): across every Table I row where both
/// numbers are recoverable, the ratio paper_ops / ops_total() is a
/// constant 1.338 (see EXPERIMENTS.md, "Throughput convention").
/// Applied only in the columns that quote the paper's convention.
inline constexpr double kPaperOpsFactor = 1.338;

/// The paper additionally keeps the *layer count* of the GOPS numerator
/// fixed at the 12-layer baseline when sweeping N (Tests 4-5 report 80 and
/// 159 GOPS = 14.8 GOP / measured latency). This helper reproduces that
/// convention: ops of the model with N forced to 12, scaled by the factor.
inline double paper_convention_gops(const ref::ModelConfig& model,
                                    double latency_ms) {
  ref::ModelConfig numerator = model;
  numerator.num_layers = 12;
  return static_cast<double>(numerator.ops_total()) * kPaperOpsFactor /
         (latency_ms * 1e-3) / 1e9;
}

/// Directory for CSV artifacts (created on demand).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Writes the machine-readable bench artifact
///   {"bench": <name>, <scalar_fields...>, "results": [<result_objects>]}
/// to results_dir()/<filename>. `scalar_fields` entries are preformatted
/// `"key": value` strings, `result_objects` are preformatted JSON objects
/// (one per measurement row). Returns false when the file can't be opened.
inline bool write_bench_json(const std::string& filename,
                             const std::string& bench,
                             const std::vector<std::string>& scalar_fields,
                             const std::vector<std::string>& result_objects) {
  const std::string path = results_dir() + "/" + filename;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench.c_str());
  for (const auto& field : scalar_fields) {
    std::fprintf(f, "  %s,\n", field.c_str());
  }
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < result_objects.size(); ++i) {
    std::fprintf(f, "    %s%s\n", result_objects[i].c_str(),
                 i + 1 < result_objects.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

inline std::string fmt(double value, int digits = 2) {
  return util::format_double(value, digits);
}

}  // namespace protea::bench
