// Shared helpers for the table/figure regeneration binaries.
#pragma once

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "accel/perf_model.hpp"
#include "ref/model_config.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace protea::bench {

/// Median of timing samples — medians shrug off the scheduler hiccups
/// that corrupt a mean. Samples are util::Stopwatch readings, so every
/// bench stamp shares the telemetry layer's clock (util::monotonic_ns).
inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Median wall time of `reps` invocations of `fn`, in milliseconds, on
/// the shared monotonic clock.
template <typename Fn>
double median_time_ms(int reps, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps > 0 ? reps : 0));
  util::Stopwatch watch;
  for (int i = 0; i < reps; ++i) {
    watch.reset();
    fn();
    samples.push_back(watch.milliseconds());
  }
  return median(std::move(samples));
}

/// The paper's GOPS columns use a more generous operation-counting
/// convention than ops_total(): across every Table I row where both
/// numbers are recoverable, the ratio paper_ops / ops_total() is a
/// constant 1.338 (see EXPERIMENTS.md, "Throughput convention").
/// Applied only in the columns that quote the paper's convention.
inline constexpr double kPaperOpsFactor = 1.338;

/// The paper additionally keeps the *layer count* of the GOPS numerator
/// fixed at the 12-layer baseline when sweeping N (Tests 4-5 report 80 and
/// 159 GOPS = 14.8 GOP / measured latency). This helper reproduces that
/// convention: ops of the model with N forced to 12, scaled by the factor.
inline double paper_convention_gops(const ref::ModelConfig& model,
                                    double latency_ms) {
  ref::ModelConfig numerator = model;
  numerator.num_layers = 12;
  return static_cast<double>(numerator.ops_total()) * kPaperOpsFactor /
         (latency_ms * 1e-3) / 1e9;
}

/// Directory for CSV artifacts (created on demand).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// One measurement in the shared BENCH_*.json schema. Every bench binary
/// emits through write_bench_records so all artifacts have the same
/// machine-readable shape:
///   {"bench": <binary>,
///    "schema": ["name", "metric", "value", "unit"],
///    "results": [{"name": ..., "metric": ..., "value": ..., "unit": ...}]}
/// `name` identifies the measured configuration (kernel + shape +
/// threads), `metric` what was measured, `unit` the value's unit.
struct BenchRecord {
  std::string name;
  std::string metric;
  double value = 0.0;
  std::string unit;
};

/// Writes the unified bench artifact to results_dir()/<filename>.
/// Returns false when the file can't be opened.
inline bool write_bench_records(const std::string& filename,
                                const std::string& bench,
                                const std::vector<BenchRecord>& records) {
  const std::string path = results_dir() + "/" + filename;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench.c_str());
  std::fprintf(f, "  \"schema\": [\"name\", \"metric\", \"value\", \"unit\"],\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"metric\": \"%s\", "
                 "\"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 r.name.c_str(), r.metric.c_str(), r.value, r.unit.c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

inline std::string fmt(double value, int digits = 2) {
  return util::format_double(value, digits);
}

}  // namespace protea::bench
