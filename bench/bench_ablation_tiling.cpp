// Ablation: the frozen-row-tile controller (what Table I's scaling
// reveals the hardware does) vs a hypothetical fully runtime-adaptive
// tile controller, across runtime embedding dimensions.
//
// This quantifies the cost of the paper's design choice: when a small
// model runs on hardware synthesized for d=768, the FFN row-tile loop
// still walks the synthesized count of (zero-padded) tiles.
#include <cstdio>

#include "bench_common.hpp"
#include "ref/model_zoo.hpp"

int main() {
  using namespace protea;

  util::Table table({"d_model", "Frozen rows (ms)", "Adaptive (ms)",
                     "Waste", "Frozen GOPS", "Adaptive GOPS"});
  table.set_title(
      "ABLATION — synthesis-frozen vs runtime-adaptive FFN row tiling "
      "(BERT variant at runtime d_model)");
  util::CsvWriter csv(bench::results_dir() + "/ablation_tiling.csv",
                      {"d_model", "frozen_ms", "adaptive_ms", "waste",
                       "frozen_gops", "adaptive_gops"});

  for (uint32_t d : {768u, 640u, 512u, 384u, 256u, 128u}) {
    ref::ModelConfig m = ref::bert_variant();
    m.d_model = d;

    accel::AccelConfig frozen;  // default: kSynthFixedRows
    accel::AccelConfig adaptive;
    adaptive.padding = accel::PaddingPolicy::kRuntimeAdaptive;

    const auto rf = accel::estimate_performance(frozen, m);
    const auto ra = accel::estimate_performance(adaptive, m);
    const double waste = rf.latency_ms / ra.latency_ms;

    table.row({std::to_string(d), bench::fmt(rf.latency_ms, 1),
               bench::fmt(ra.latency_ms, 1), bench::fmt(waste, 2) + "x",
               bench::fmt(rf.gops, 1), bench::fmt(ra.gops, 1)});
    csv.row({std::to_string(d), bench::fmt(rf.latency_ms, 3),
             bench::fmt(ra.latency_ms, 3), bench::fmt(waste, 4),
             bench::fmt(rf.gops, 2), bench::fmt(ra.gops, 2)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "At the synthesized maximum (d=768) the policies coincide; the "
      "frozen-row controller's padding\noverhead grows as the runtime "
      "model shrinks — the flexibility/efficiency trade the paper "
      "accepts\nfor one-synthesis programmability.\n");
  std::printf("CSV written to bench_results/ablation_tiling.csv\n");
  return 0;
}
