// Regenerates Table I: runtime programmability, resource utilization and
// performance of ProTEA on the Alveo U55C.
//
// One synthesis (TS_MHA=64, TS_FFN=128, 8 head engines, 8-bit fixed),
// nine runtime programs swept over heads / layers / embedding dimension /
// sequence length. Resources are constant by construction; latency and
// GOPS come from the cycle model. The paper's reported values are printed
// alongside for comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "hw/device.hpp"
#include "hw/resource_model.hpp"
#include "ref/model_zoo.hpp"

namespace {

// Table I's published latency / GOPS per test row.
constexpr double kPaperLatencyMs[9] = {279, 285, 295, 186, 93,
                                       186, 95,  560, 165};
constexpr double kPaperGops[9] = {53, 51, 49, 80, 159, 36, 18, 54, 44};

}  // namespace

int main() {
  using namespace protea;

  const accel::AccelConfig cfg;  // the paper's synthesis point
  const auto resources = hw::estimate_resources(cfg.synth);
  const auto& budget = hw::alveo_u55c().budget;

  auto pct = [](uint64_t used, uint64_t total) {
    return bench::fmt(100.0 * hw::utilization(used, total), 0) + "%";
  };
  const std::string dsp_cell =
      std::to_string(resources.used.dsp) + " (" +
      pct(resources.used.dsp, budget.dsp) + ")";
  const std::string lut_cell =
      std::to_string(resources.used.lut) + " (" +
      pct(resources.used.lut, budget.lut) + ")";
  const std::string ff_cell = std::to_string(resources.used.ff) + " (" +
                              pct(resources.used.ff, budget.ff) + ")";

  util::Table table({"Test", "SL", "Emb", "Heads", "Layers", "Format",
                     "DSPs", "LUTs", "FFs", "Latency(ms)", "paper",
                     "GOPS*", "paper"});
  table.set_title(
      "TABLE I — overall results for ProTEA (simulated; one synthesis, "
      "nine runtime programs)\n"
      "GOPS* uses the paper's throughput convention (see EXPERIMENTS.md).");

  util::CsvWriter csv(
      bench::results_dir() + "/table1_runtime.csv",
      {"test", "seq_len", "d_model", "heads", "layers", "dsp", "lut", "ff",
       "latency_ms", "paper_latency_ms", "gops_paper_convention",
       "paper_gops", "gops_ours", "fmax_mhz", "dsp_utilization"});

  const auto tests = ref::table1_tests();
  for (size_t i = 0; i < tests.size(); ++i) {
    const auto& model = tests[i];
    const auto report = accel::estimate_performance(cfg, model);
    const double paper_gops =
        bench::paper_convention_gops(model, report.latency_ms);

    table.row({"#" + std::to_string(i + 1), std::to_string(model.seq_len),
               std::to_string(model.d_model),
               std::to_string(model.num_heads),
               std::to_string(model.num_layers), "8bit fixed", dsp_cell,
               lut_cell, ff_cell, bench::fmt(report.latency_ms, 1),
               bench::fmt(kPaperLatencyMs[i], 0),
               bench::fmt(paper_gops, 0), bench::fmt(kPaperGops[i], 0)});

    csv.row({std::to_string(i + 1), std::to_string(model.seq_len),
             std::to_string(model.d_model), std::to_string(model.num_heads),
             std::to_string(model.num_layers),
             std::to_string(resources.used.dsp),
             std::to_string(resources.used.lut),
             std::to_string(resources.used.ff),
             bench::fmt(report.latency_ms, 3),
             bench::fmt(kPaperLatencyMs[i], 0), bench::fmt(paper_gops, 1),
             bench::fmt(kPaperGops[i], 0), bench::fmt(report.gops, 1),
             bench::fmt(report.fmax_mhz, 0),
             bench::fmt(report.dsp_utilization, 4)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV written to %s\n", csv.path().c_str());
  std::printf(
      "\nResources are identical across all nine tests — the accelerator "
      "is synthesized once\nand reprogrammed in software, the paper's "
      "central claim.\n");
  return 0;
}
