// Google-benchmark microbenchmarks of the functional engine kernels —
// the simulator's own hot paths (useful when scaling the simulator to
// bigger sweeps, and a regression guard on the int8 datapath).
//
// main() additionally emits bench_results/BENCH_engines.json (engine,
// shape, threads, GMAC/s) so engine throughput is tracked across PRs
// alongside BENCH_gemm.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "accel/attention_module.hpp"
#include "accel/engines.hpp"
#include "accel/ffn_module.hpp"
#include "accel/quantized_model.hpp"
#include "accel/softmax_unit.hpp"
#include "bench_common.hpp"
#include "numeric/quantizer.hpp"
#include "ref/encoder.hpp"
#include "ref/weights.hpp"
#include "tensor/qgemm.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace protea;

struct Env {
  ref::ModelConfig config;
  accel::QuantizedModel qmodel;
  tensor::MatrixI8 x;

  explicit Env(uint32_t sl, uint32_t d, uint32_t h) {
    config.seq_len = sl;
    config.d_model = d;
    config.num_heads = h;
    config.num_layers = 1;
    const auto weights = ref::make_random_weights(config, 777);
    const auto input = ref::make_random_input(config, 778);
    qmodel = accel::prepare_model(weights, input);
    numeric::Quantizer q(8, true);
    q.set_scale(qmodel.layers[0].scales.x);
    x = tensor::MatrixI8(sl, d);
    q.quantize(input.flat(), x.flat());
  }
};

Env& env() {
  static Env e(32, 128, 4);
  return e;
}

void BM_QkvEngine(benchmark::State& state) {
  const auto& layer = env().qmodel.layers[0];
  tensor::MatrixI8 q, k, v;
  for (auto _ : state) {
    accel::run_qkv_engine(env().x, layer.heads[0], 64, layer.rq_q,
                          layer.rq_k, layer.rq_v, q, k, v);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 3 *
                          32 * 128 * 32);
}
BENCHMARK(BM_QkvEngine);

void BM_QkEngine(benchmark::State& state) {
  const auto& layer = env().qmodel.layers[0];
  tensor::MatrixI8 q, k, v, logits;
  accel::run_qkv_engine(env().x, layer.heads[0], 64, layer.rq_q,
                        layer.rq_k, layer.rq_v, q, k, v);
  for (auto _ : state) {
    accel::run_qk_engine(q, k, layer.rq_logit, logits);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32 *
                          32 * 32);
}
BENCHMARK(BM_QkEngine);

void BM_SoftmaxUnit(benchmark::State& state) {
  const auto& layer = env().qmodel.layers[0];
  const accel::SoftmaxUnit unit(layer.scales.logit);
  tensor::MatrixI8 logits(32, 32, 3);
  for (auto _ : state) {
    auto w = unit.run(logits);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_SoftmaxUnit);

void BM_FfnEngine(benchmark::State& state) {
  const auto& layer = env().qmodel.layers[0];
  tensor::MatrixI8 out;
  for (auto _ : state) {
    accel::run_ffn_engine(env().x, layer.wo, layer.bo, 128, layer.rq_proj,
                          accel::FfnActivation::kNone, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32 *
                          128 * 128);
}
BENCHMARK(BM_FfnEngine);

void BM_AttentionModule(benchmark::State& state) {
  const auto& layer = env().qmodel.layers[0];
  for (auto _ : state) {
    auto concat = accel::AttentionModule::run(layer, env().x, 64);
    benchmark::DoNotOptimize(concat.data());
  }
}
BENCHMARK(BM_AttentionModule);

void BM_FfnModule(benchmark::State& state) {
  const auto& layer = env().qmodel.layers[0];
  auto concat = accel::AttentionModule::run(layer, env().x, 64);
  for (auto _ : state) {
    auto out = accel::FfnModule::run(layer, concat, env().x, 128,
                                     ref::Activation::kGelu);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FfnModule);

// --- BENCH_engines.json ------------------------------------------------------

struct EngineResult {
  std::string engine;
  uint32_t sl, d;
  size_t threads;
  double ms, gmacs;
};

template <typename Fn>
EngineResult time_engine(const std::string& name, uint32_t sl, uint32_t d,
                         size_t threads, int reps, const Fn& fn) {
  accel::EngineStats warm;
  fn(&warm);  // warm-up; also captures the engine's own MAC count
  util::Stopwatch watch;
  for (int i = 0; i < reps; ++i) {
    accel::EngineStats stats;
    fn(&stats);
  }
  const double ms = watch.milliseconds() / reps;
  const double gmacs =
      static_cast<double>(warm.macs) / (ms * 1e-3) / 1e9;
  return {name, sl, d, threads, ms, gmacs};
}

void emit_bench_engines_json() {
  std::vector<EngineResult> results;
  const auto& layer = env().qmodel.layers[0];

  for (size_t threads : {size_t{1}, size_t{4}}) {
    tensor::qgemm_set_threads(threads == 1 ? 0 : threads);
    results.push_back(time_engine(
        "qkv", 32, 128, threads, 50, [&](accel::EngineStats* stats) {
          tensor::MatrixI8 q, k, v;
          accel::run_qkv_engine(env().x, layer.heads[0], 64, layer.rq_q,
                                layer.rq_k, layer.rq_v, q, k, v, stats);
        }));
    results.push_back(time_engine(
        "ffn", 32, 128, threads, 50, [&](accel::EngineStats* stats) {
          tensor::MatrixI8 out;
          accel::run_ffn_engine(env().x, layer.wo, layer.bo, 128,
                                layer.rq_proj, accel::FfnActivation::kNone,
                                0.0, out, stats);
        }));
    results.push_back(time_engine(
        "attention_module", 32, 128, threads, 20,
        [&](accel::EngineStats* stats) {
          auto concat = accel::AttentionModule::run(layer, env().x, 64,
                                                    stats);
          benchmark::DoNotOptimize(concat.data());
        }));
  }
  tensor::qgemm_set_threads(0);

  char buf[128];
  std::vector<protea::bench::BenchRecord> records;
  for (const auto& r : results) {
    std::snprintf(buf, sizeof(buf), "%s_sl%u_d%u_t%zu", r.engine.c_str(),
                  r.sl, r.d, r.threads);
    records.push_back({buf, "latency", r.ms, "ms"});
    records.push_back({buf, "throughput", r.gmacs, "GMAC/s"});
  }
  protea::bench::write_bench_records("BENCH_engines.json",
                                     "bench_engines_micro", records);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_bench_engines_json();
  return 0;
}
